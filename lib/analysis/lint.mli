(** The lint driver: staged diagnostic passes over one constraint file
    (plus an optional schema and an optional goal constraint).

    Stages, in order: classification (Table 1 cell, [PC1xx]), type flow
    ([PC6xx], schema-aware), vacuity ([PC2xx]), inconsistency ([PC4xx]),
    redundancy ([PC3xx] — skipped when Sigma is already known
    inconsistent, since an inconsistent theory implies everything),
    hygiene ([PC5xx]), and — opt-in only — the constraint-interaction
    analyzer ([PC7xx], {!Interact}).  After the passes: suppression
    pragmas are
    applied (unused ones become [PC510]), then the configuration's
    severity overrides.  Parse failures short-circuit into
    [PC001]/[PC002]/[PC003] diagnostics so CI consumers see them in the
    same stream. *)

type input = {
  sigma_file : string;  (** display path for diagnostics *)
  sigma : Pathlang.Parser.located list;
  pragmas : Pathlang.Parser.pragma list;
  schema : Schema.Mschema.t option;
  schema_file : string option;
  schema_spans : Schema.Schema_parser.spans option;
  phi : Pathlang.Constr.t option;  (** optional goal, sharpens [PC1xx] *)
  config : Config.t;
  explain : bool;  (** emit [PC602] type-flow annotations *)
  interact : bool;
      (** force the [PC7xx] interaction analyzer on; [false] still runs
          it when the config sets [[passes] interact = true] *)
}

val run :
  ?budget:Core.Engine.Budget.t -> ?pool:Par.t -> input -> Diagnostic.t list
(** All passes over an already-parsed input; diagnostics in
    {!Diagnostic.compare} order.  [budget] (default
    [Core.Engine.Budget.default]) governs the best-effort redundancy
    stage.  Each executed pass bumps the [lint.passes.run] counter
    (passes disabled by the configuration do not).

    With a [?pool] of more than one domain the passes run concurrently
    (the span-pure passes first, then redundancy — which needs the
    inconsistency verdict — alongside the interaction analyzer);
    results are concatenated in the fixed pass order and sorted as
    always, so the diagnostic stream is byte-identical to a sequential
    run's. *)

val exit_code : ?max_warnings:int -> Diagnostic.t list -> int
(** The severity-threshold exit policy: 1 when an error-severity
    diagnostic fired, 1 when more than [max_warnings] warnings fired
    (when a threshold was given), 0 otherwise. *)

val lint_paths :
  ?budget:Core.Engine.Budget.t ->
  ?pool:Par.t ->
  ?schema_file:string ->
  ?phi:string ->
  ?config_file:string ->
  ?cache_dir:string ->
  ?explain:bool ->
  ?interact:bool ->
  sigma_file:string ->
  unit ->
  Diagnostic.t list
(** Load the files and {!run}.  Constraint files may be the line DSL or
    the XML syntax (XML constraints get element-level spans and carry no
    pragmas).  I/O and parse failures become [PC001]/[PC002]/[PC003]
    error diagnostics rather than exceptions, so the caller can render
    them uniformly.

    [config_file] supplies severity overrides, pass selection and
    defaults for [explain], [cache_dir] and the warning threshold
    (explicit arguments win).  With a [cache_dir] (from either source),
    results are memoized by content hash: a hit skips every pass and is
    observable via the [lint.cache.hits] counter. *)
