(** The lint driver: staged diagnostic passes over one constraint file
    (plus an optional schema and an optional goal constraint).

    Stages, in order: classification (Table 1 cell, [PC1xx]), vacuity
    ([PC2xx]), inconsistency ([PC4xx]), redundancy ([PC3xx] — skipped
    when Sigma is already known inconsistent, since an inconsistent
    theory implies everything), hygiene ([PC5xx]).  Parse failures
    short-circuit into [PC001]/[PC002] diagnostics so CI consumers see
    them in the same stream. *)

type input = {
  sigma_file : string;  (** display path for diagnostics *)
  sigma : (Pathlang.Constr.t * Pathlang.Span.t) list;
  schema : Schema.Mschema.t option;
  schema_file : string option;
  schema_spans : Schema.Schema_parser.spans option;
  phi : Pathlang.Constr.t option;  (** optional goal, sharpens [PC1xx] *)
}

val run : ?budget:Core.Engine.Budget.t -> input -> Diagnostic.t list
(** All passes over an already-parsed input; diagnostics in
    {!Diagnostic.compare} order.  [budget] (default
    [Core.Engine.Budget.default]) governs the best-effort redundancy
    stage. *)

val lint_paths :
  ?budget:Core.Engine.Budget.t ->
  ?schema_file:string ->
  ?phi:string ->
  sigma_file:string ->
  unit ->
  Diagnostic.t list
(** Load the files and {!run}.  Constraint files may be the line DSL or
    the XML syntax (XML constraints get whole-file spans).  I/O and
    parse failures become [PC001]/[PC002] error diagnostics rather than
    exceptions, so the caller can render them uniformly. *)
