(** Diagnostics core for the static analyzer.

    Every finding of [pathctl lint] is a {!t}: a stable code from the
    {!rules} table, a severity, a message, and an optional source span.
    Three renderers are provided: human-readable text, JSON lines (one
    object per diagnostic), and SARIF 2.1.0 for CI annotation.

    Codes are stable across releases — tools may match on them:
    {ul
    {- [PC0xx] input errors (parse failures),}
    {- [PC1xx] fragment / decidability classification (Table 1),}
    {- [PC2xx] vacuity under the schema,}
    {- [PC3xx] redundancy,}
    {- [PC4xx] inconsistency,}
    {- [PC5xx] hygiene (including [PC510], unused suppressions),}
    {- [PC6xx] schema-aware type flow (dead paths, M+ undecidability
       triggers, inferred type annotations),}
    {- [PC7xx] constraint interaction (minimal unsatisfiable cores,
       implication-DAG edges, path-vs-type provenance; {!Interact},
       opt-in),}
    {- [PC8xx] typed regular path queries (empty queries, dead
       subexpressions, ill-typed regular constraints, inferred type
       chains; {!Querycheck}).}} *)

type severity = Error | Warning | Info | Hint

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"], ["hint"]. *)

type t = {
  code : string;  (** stable rule id, e.g. ["PC101"] *)
  severity : severity;
  message : string;
  file : string;  (** display path of the analyzed file *)
  span : Pathlang.Span.t option;  (** location, when the finding has one *)
}

val make :
  code:string ->
  severity:severity ->
  file:string ->
  ?span:Pathlang.Span.t ->
  string ->
  t
(** @raise Invalid_argument when [code] is not in {!rules}. *)

val rules : (string * severity * string) list
(** The rule table: code, default severity, short description.  Drives
    the SARIF [rules] metadata and the DESIGN.md code table. *)

val has_errors : t list -> bool
(** True iff some diagnostic has severity {!Error} — the condition under
    which [pathctl lint] exits non-zero. *)

val compare : t -> t -> int
(** Orders by file, then position (spanless first), then code — the
    presentation order of every renderer. *)

val to_text : t -> string
(** One line: [file:line:col: severity[CODE] message]. *)

val render_text : t list -> string
(** Sorted diagnostics, one per line, plus a trailing summary line
    ([N error(s), M warning(s), ...]). *)

val render_json : t list -> string
(** JSON lines: one object per diagnostic with fields [code],
    [severity], [message], [file] and, when located, [line],
    [startColumn], [endColumn] (1-based, end-exclusive). *)

val render_sarif : t list -> string
(** A complete SARIF 2.1.0 document: one run of the [pathctl] driver
    with the full {!rules} table and one result per diagnostic.
    Severities map to SARIF levels [error]/[warning]/[note]. *)
