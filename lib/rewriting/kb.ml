module Path = Pathlang.Path

type outcome =
  | Convergent of Srs.rule list
  | Budget_exhausted of Srs.rule list

let c_passes = Obs.Counter.make ~unit_:"passes" "kb.completion_passes"
let c_cps = Obs.Counter.make ~unit_:"pairs" "kb.critical_pairs"
let c_rules = Obs.Counter.make ~unit_:"rules" "kb.rules_peak"

(* how many unjoinable critical pairs each completion pass surfaces;
   the shape of this distribution is what motivates the pass budget *)
let h_cps =
  Obs.Histogram.make ~unit_:"pairs" "kb.critical_pairs_per_pass"

(* Keep the rule set inter-reduced: every rule's sides are normal with
   respect to the other rules.  Rules whose lhs becomes reducible are
   turned back into equations. *)
let simplify rules =
  let rec go acc pending = function
    | [] -> (List.rev acc, pending)
    | (r : Srs.rule) :: rest ->
        let others = acc @ rest in
        let rhs' = Srs.normalize others r.rhs in
        if Srs.rewrite_once others r.lhs <> None then
          go acc ((r.lhs, rhs') :: pending) rest
        else go ({ r with rhs = rhs' } :: acc) pending rest
  in
  go [] [] rules

let complete ?(max_rules = 512) ?(max_passes = 64) equations =
  Obs.Span.with_ "kb.complete"
    ~args:[ ("equations", string_of_int (List.length equations)) ]
    (fun () ->
  (* A global fuel counter guards against pathological simplify/reopen
     cycles; completion is inherently a semi-algorithm. *)
  let fuel = ref (1000 * max_rules) in
  let rec add_equations rules pending =
    decr fuel;
    if !fuel <= 0 then Error rules
    else
      match pending with
      | [] -> Ok rules
      | (u, v) :: pending ->
          let u' = Srs.normalize rules u and v' = Srs.normalize rules v in
          if Path.equal u' v' then add_equations rules pending
          else (
            match Srs.orient (u', v') with
            | None -> add_equations rules pending
            | Some r ->
                if List.length rules >= max_rules then Error rules
                else
                  let rules, reopened = simplify (r :: rules) in
                  Obs.Counter.set_max c_rules (List.length rules);
                  add_equations rules (reopened @ pending))
  in
  let rec passes n rules =
    if n > max_passes then Budget_exhausted rules
    else begin
      Obs.Counter.incr c_passes;
      let cps =
        List.filter
          (fun (u, v) -> not (Srs.joinable rules u v))
          (Srs.critical_pairs rules)
      in
      Obs.Counter.add c_cps (List.length cps);
      if Obs.enabled () then
        Obs.Histogram.observe h_cps (float_of_int (List.length cps));
      if cps = [] then Convergent rules
      else
        match add_equations rules cps with
        | Ok rules' -> passes (n + 1) rules'
        | Error rules' -> Budget_exhausted rules'
    end
  in
  match add_equations [] equations with
  | Ok rules -> passes 1 rules
  | Error rules -> Budget_exhausted rules)

let decides_equal rules u v = Srs.joinable rules u v
