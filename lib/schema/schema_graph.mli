(** The signature [sigma(Delta) = (r, E(Delta), T(Delta))] determined by
    a schema (Section 3.2.2), viewed as a graph on types.

    Each sort in [T(Delta)] prescribes the outgoing edges of its nodes:
    atomic types have none, set types have [*]-edges (the distinguished
    set-membership relation) to the member sort, and record types have
    one edge per field label.  A class type behaves as its body
    [nu(C)].  Because labels are functional on record sorts and sets
    only carry [*], walking a path from [DBtype] visits a unique
    sequence of sorts: this module computes that walk, and with it
    [Paths(Delta)] and [E(Delta)]/[T(Delta)]. *)

val star : Pathlang.Label.t
(** The distinguished set-membership edge label, written [*] (the paper
    writes it as a dedicated binary relation epsilon/star). *)

val expand : Mschema.t -> Mtype.t -> Mtype.t
(** Resolve a class type to its body [nu(C)]; other types unchanged. *)

val out_edges : Mschema.t -> Mtype.t -> (Pathlang.Label.t * Mtype.t) list
(** The labeled edges out of a node of the given sort, per the type
    constraint Phi(Delta).  Empty for atomic sorts. *)

val successor : Mschema.t -> Mtype.t -> Pathlang.Label.t -> Mtype.t option
(** The sort reached from the given sort by one edge label, if the label
    is admissible there. *)

val type_of_path : Mschema.t -> Pathlang.Path.t -> Mtype.t option
(** The sort reached from [DBtype] by walking the path; [None] iff the
    path is not in [Paths(Delta)]. *)

val in_paths : Mschema.t -> Pathlang.Path.t -> bool
(** Membership in [Paths(Delta)]: some structure in [U(Delta)] realizes
    the path from the root.  (For M this is exactly reachability in the
    schema graph; for M+ too, since sets may always be made non-empty.) *)

val check_constraint_paths :
  Mschema.t -> Pathlang.Constr.t -> (unit, Pathlang.Path.t) result
(** Checks that [prefix], [prefix.lhs] and [prefix.rhs] are all in
    [Paths(Delta)] (the paper's standing assumption on constraints over
    a schema); returns the first offending path. *)

val sorts : Mschema.t -> Mtype.t list
(** [T(Delta)]: all sorts reachable from [DBtype] (including it). *)

val labels : Mschema.t -> Pathlang.Label.Set.t
(** [E(Delta)]: all edge labels of reachable sorts. *)

val automaton : Mschema.t -> Automata.Nfa.t * Mtype.t array * Automata.Nfa.state
(** The schema graph as a finite automaton over sorts: states are the
    members of [T(Delta)] (the returned array maps state to sort), the
    transitions are the edges of [sigma(Delta)], all states are final,
    and the returned start state is [DBtype].  The words accepted from
    the start state are exactly [Paths(Delta)]. *)

val paths_up_to : Mschema.t -> int -> Pathlang.Path.t list
(** All members of [Paths(Delta)] of length at most the bound (for
    tests and generators). *)
