(* Hand-rolled recursive descent over a cursor, mirroring Xmlrep.Xml. *)

module Span = Pathlang.Span

type error = { line : int; col : int; token : string; reason : string }

let error_to_string e =
  if e.token = "" then
    Printf.sprintf "line %d, column %d: %s" e.line e.col e.reason
  else
    Printf.sprintf "line %d, column %d: at %S: %s" e.line e.col e.token e.reason

type spans = {
  class_spans : (string * Span.t) list;
  db_span : Span.t option;
}

type cursor = { src : string; mutable pos : int }

exception Err of error

let error_at src pos token reason =
  let line, col = Span.of_offset src pos in
  { line; col; token; reason }

let fail_at cur pos token reason = raise (Err (error_at cur.src pos token reason))

let peek cur =
  if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

(* failure at the cursor: the offending token is the next character *)
let fail cur msg =
  let token = match peek cur with Some c -> String.make 1 c | None -> "" in
  fail_at cur cur.pos token msg

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | Some '#' ->
        (* comment to end of line *)
        let rec eat () =
          match peek cur with
          | Some '\n' | None -> ()
          | Some _ ->
              advance cur;
              eat ()
        in
        eat ();
        go ()
    | _ -> ()
  in
  go ()

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* an identifier together with its start offset *)
let ident_at cur =
  skip_ws cur;
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when is_ident_char c ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  if cur.pos = start then fail cur "expected an identifier";
  (String.sub cur.src start (cur.pos - start), start)

let ident cur = fst (ident_at cur)

(* idents never span lines, so the span is one line wide *)
let span_of_token cur start text =
  let line, col = Span.of_offset cur.src start in
  Span.v ~line ~start_col:col ~end_col:(col + String.length text)

let expect cur c =
  skip_ws cur;
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let accept cur c =
  skip_ws cur;
  match peek cur with
  | Some c' when c' = c ->
      advance cur;
      true
  | _ -> false

(* type expressions; class-ness resolved afterwards *)
type raw = Rname of string | Rset of raw | Rrecord of (string * raw) list

let rec parse_type cur =
  skip_ws cur;
  match peek cur with
  | Some '{' ->
      advance cur;
      let t = parse_type cur in
      expect cur '}';
      Rset t
  | Some '[' ->
      advance cur;
      let rec fields acc =
        let l = ident cur in
        expect cur ':';
        let t = parse_type cur in
        let acc = (l, t) :: acc in
        if accept cur ';' then fields acc
        else begin
          expect cur ']';
          Rrecord (List.rev acc)
        end
      in
      if accept cur ']' then Rrecord [] else fields []
  | _ -> Rname (ident cur)

let rec resolve class_names = function
  | Rname n ->
      if List.mem n class_names then Mtype.Class (Mtype.cname n)
      else Mtype.Atomic (Mtype.atomic n)
  | Rset t -> Mtype.Set (resolve class_names t)
  | Rrecord fields ->
      Mtype.Record
        (List.map
           (fun (l, t) -> (Pathlang.Label.make l, resolve class_names t))
           fields)

(* schema-level validation errors from [Mschema.make] carry no source
   position; anchor them at the start of the document *)
let no_position reason = { line = 1; col = 1; token = ""; reason }

let of_string_spanned src =
  let cur = { src; pos = 0 } in
  try
    let kind = ref None in
    let classes = ref [] in
    let db = ref None in
    let class_spans = ref [] in
    let db_span = ref None in
    let rec loop () =
      skip_ws cur;
      if peek cur = None then ()
      else begin
        let kw, kw_start = ident_at cur in
        (match kw with
        | "kind" -> (
            let k, k_start = ident_at cur in
            match k with
            | "M" ->
                (* the ident parser stops at '+', so "M+" arrives as "M"
                   followed by a '+' character *)
                if accept cur '+' then kind := Some Mschema.M_plus
                else kind := Some Mschema.M
            | "Mplus" | "M_plus" -> kind := Some Mschema.M_plus
            | k -> fail_at cur k_start k "unknown kind")
        | "class" ->
            let name, name_start = ident_at cur in
            class_spans :=
              (name, span_of_token cur name_start name) :: !class_spans;
            expect cur '=';
            let t = parse_type cur in
            classes := (name, t) :: !classes
        | "db" ->
            db_span := Some (span_of_token cur kw_start kw);
            expect cur '=';
            db := Some (parse_type cur)
        | other -> fail_at cur kw_start other "unknown directive");
        loop ()
      end
    in
    loop ();
    match !db with
    | None -> Error (no_position "missing 'db = ...' line")
    | Some raw_db -> (
        let class_names = List.map fst !classes in
        let resolved_classes =
          List.rev_map
            (fun (n, t) -> (Mtype.cname n, resolve class_names t))
            !classes
        in
        let dbtype = resolve class_names raw_db in
        let try_kind k =
          Mschema.make ~kind:k ~classes:resolved_classes ~dbtype
        in
        let spans =
          { class_spans = List.rev !class_spans; db_span = !db_span }
        in
        let finish = function
          | Ok s -> Ok (s, spans)
          | Error m -> Error (no_position m)
        in
        match !kind with
        | Some k -> finish (try_kind k)
        | None -> (
            match try_kind Mschema.M with
            | Ok s -> Ok (s, spans)
            | Error _ -> finish (try_kind Mschema.M_plus)))
  with Err e -> Error e

let of_string src =
  match of_string_spanned src with
  | Ok (s, _) -> Ok s
  | Error e -> Error (error_to_string e)

let load_spanned path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string_spanned s
  | exception Sys_error m -> Error (no_position m)

let load path =
  match load_spanned path with
  | Ok (s, _) -> Ok s
  | Error e -> Error (error_to_string e)

let rec type_to_string = function
  | Mtype.Atomic b -> Mtype.atomic_name b
  | Mtype.Class c -> Mtype.cname_name c
  | Mtype.Set t -> "{" ^ type_to_string t ^ "}"
  | Mtype.Record fields ->
      "[ "
      ^ String.concat "; "
          (List.map
             (fun (l, t) ->
               Pathlang.Label.to_string l ^ ": " ^ type_to_string t)
             fields)
      ^ " ]"

let to_string schema =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (match Mschema.kind schema with
    | Mschema.M -> "kind M\n"
    | Mschema.M_plus -> "kind M+\n");
  List.iter
    (fun (c, body) ->
      Buffer.add_string buf
        (Printf.sprintf "class %s = %s\n" (Mtype.cname_name c)
           (type_to_string body)))
    (Mschema.classes schema);
  Buffer.add_string buf
    (Printf.sprintf "db = %s\n" (type_to_string (Mschema.dbtype schema)));
  Buffer.contents buf
