module Label = Pathlang.Label
module Path = Pathlang.Path
module Constr = Pathlang.Constr

type spec = {
  schema : Mschema.t;
  extent_constraints : Constr.t list;
  inverse_constraints : Constr.t list;
}

(* --- lexer ------------------------------------------------------------- *)

type token = Ident of string | Punct of string

let tok_text = function Ident s -> s | Punct p -> p

(* each token is paired with its start offset in the source, so parse
   errors can report a line/column position *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      toks := (Ident (String.sub src start (!i - start)), start) :: !toks
    end
    else if c = ':' && !i + 1 < n && src.[!i + 1] = ':' then begin
      toks := (Punct "::", !i) :: !toks;
      i := !i + 2
    end
    else begin
      toks := (Punct (String.make 1 c), !i) :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* --- parser ------------------------------------------------------------- *)

exception Err of string

exception Err_at of int * string * string
(** (offset, offending token, reason) *)

type member =
  | Attr of string * string  (** type name, field *)
  | Rel of {
      set : bool;
      target : string;
      field : string;
      inverse : (string * string) option;
    }

type iface = { name : string; extent : string option; members : member list }

let parse_interfaces ~eof toks =
  let toks = ref toks in
  let peek () = match !toks with (t, _) :: _ -> Some t | [] -> None in
  let next_at () =
    match !toks with
    | t :: rest ->
        toks := rest;
        t
    | [] -> raise (Err_at (eof, "", "unexpected end of input"))
  in
  let next () = fst (next_at ()) in
  let expect_punct p =
    match next_at () with
    | Punct p', _ when p' = p -> ()
    | t, pos -> raise (Err_at (pos, tok_text t, Printf.sprintf "expected '%s'" p))
  in
  let expect_ident () =
    match next_at () with
    | Ident s, _ -> s
    | Punct p, pos -> raise (Err_at (pos, p, "expected an identifier"))
  in
  let parse_member () =
    match next_at () with
    | Ident "attribute", _ ->
        let ty = expect_ident () in
        let field = expect_ident () in
        expect_punct ";";
        Attr (ty, field)
    | Ident "relationship", _ ->
        let set, target =
          match next_at () with
          | Ident "set", _ ->
              expect_punct "<";
              let t = expect_ident () in
              expect_punct ">";
              (true, t)
          | Ident t, _ -> (false, t)
          | Punct p, pos ->
              raise (Err_at (pos, p, "unexpected punctuation after relationship"))
        in
        let field = expect_ident () in
        let inverse =
          match peek () with
          | Some (Ident "inverse") ->
              ignore (next ());
              let cls = expect_ident () in
              expect_punct "::";
              let g = expect_ident () in
              Some (cls, g)
          | _ -> None
        in
        expect_punct ";";
        Rel { set; target; field; inverse }
    | Ident other, pos -> raise (Err_at (pos, other, "unknown member kind"))
    | Punct p, pos -> raise (Err_at (pos, p, "unexpected punctuation"))
  in
  let parse_iface () =
    (match next_at () with
    | Ident "interface", _ -> ()
    | t, pos -> raise (Err_at (pos, tok_text t, "expected 'interface'")));
    let name = expect_ident () in
    let extent =
      match peek () with
      | Some (Punct "(") ->
          ignore (next ());
          (match next_at () with
          | Ident "extent", _ -> ()
          | t, pos -> raise (Err_at (pos, tok_text t, "expected 'extent'")));
          let e = expect_ident () in
          expect_punct ")";
          Some e
      | _ -> None
    in
    expect_punct "{";
    let members = ref [] in
    let rec members_loop () =
      match peek () with
      | Some (Punct "}") ->
          ignore (next ());
          (* optional trailing ; *)
          (match peek () with
          | Some (Punct ";") -> ignore (next ())
          | _ -> ())
      | Some _ ->
          members := parse_member () :: !members;
          members_loop ()
      | None -> raise (Err_at (eof, "", "unterminated interface"))
    in
    members_loop ();
    { name; extent; members = List.rev !members }
  in
  let rec loop acc =
    match peek () with
    | None -> List.rev acc
    | Some _ -> loop (parse_iface () :: acc)
  in
  loop []

(* --- semantics ------------------------------------------------------------ *)

let atomic_of_odl = function
  | "String" -> Mtype.string_
  | "Long" | "Int" | "Integer" -> Mtype.int_
  | other -> Mtype.atomic (String.lowercase_ascii other)

let build ifaces =
  if ifaces = [] then raise (Err "no interfaces");
  let declared n = List.exists (fun i -> i.name = n) ifaces in
  let extent_of n =
    List.find_map (fun i -> if i.name = n then i.extent else None) ifaces
  in
  (* classes *)
  let classes =
    List.map
      (fun i ->
        let fields =
          List.map
            (function
              | Attr (ty, f) -> (Label.make f, Mtype.Atomic (atomic_of_odl ty))
              | Rel { set; target; field; _ } ->
                  if not (declared target) then
                    raise (Err ("undeclared interface " ^ target));
                  let t = Mtype.Class (Mtype.cname target) in
                  (Label.make field, if set then Mtype.Set t else t))
            i.members
        in
        (Mtype.cname i.name, Mtype.Record fields))
      ifaces
  in
  let extents = List.filter_map (fun i -> Option.map (fun e -> (e, i.name)) i.extent) ifaces in
  if extents = [] then raise (Err "no interface declares an extent");
  let dbtype =
    Mtype.Record
      (List.map
         (fun (e, cls) -> (Label.make e, Mtype.Set (Mtype.Class (Mtype.cname cls))))
         extents)
  in
  let schema =
    match Mschema.make ~kind:Mschema.M_plus ~classes ~dbtype with
    | Ok s -> s
    | Error e -> raise (Err e)
  in
  let star = Schema_graph.star in
  let extent_path e = Path.of_labels [ Label.make e; star ] in
  let field_path field set =
    let p = Path.singleton (Label.make field) in
    if set then Path.snoc p star else p
  in
  let is_set_field cls g =
    List.exists
      (fun i ->
        i.name = cls
        && List.exists
             (function
               | Rel { set; field; _ } -> field = g && set
               | Attr _ -> false)
             i.members)
      ifaces
  in
  let extent_constraints =
    List.concat_map
      (fun i ->
        match i.extent with
        | None -> []
        | Some e ->
            List.filter_map
              (function
                | Rel { set; target; field; _ } -> (
                    match extent_of target with
                    | Some d ->
                        Some
                          (Constr.word
                             ~lhs:(Path.concat (extent_path e) (field_path field set))
                             ~rhs:(extent_path d))
                    | None -> None)
                | Attr _ -> None)
              i.members)
      ifaces
  in
  let inverse_constraints =
    List.concat_map
      (fun i ->
        match i.extent with
        | None -> []
        | Some e ->
            List.filter_map
              (function
                | Rel { set; field; inverse = Some (cls, g); _ } ->
                    Some
                      (Constr.backward ~prefix:(extent_path e)
                         ~lhs:(field_path field set)
                         ~rhs:(field_path g (is_set_field cls g)))
                | Rel _ | Attr _ -> None)
              i.members)
      ifaces
  in
  { schema; extent_constraints; inverse_constraints }

let parse src =
  match build (parse_interfaces ~eof:(String.length src) (tokenize src)) with
  | spec -> Ok spec
  | exception Err m -> Error m
  | exception Err_at (pos, token, reason) ->
      let line, col = Pathlang.Span.of_offset src pos in
      if token = "" then
        Error (Printf.sprintf "line %d, column %d: %s" line col reason)
      else
        Error
          (Printf.sprintf "line %d, column %d: at %S: %s" line col token reason)

(* --- rendering --------------------------------------------------------------- *)

let odl_type_name b =
  match Mtype.atomic_name b with
  | "string" -> "String"
  | "int" -> "Long"
  | other -> String.capitalize_ascii other

let render spec =
  let buf = Buffer.create 256 in
  let dbfields =
    match Mschema.dbtype spec.schema with
    | Mtype.Record fs -> fs
    | _ -> []
  in
  let extent_of cls =
    List.find_map
      (fun (l, t) ->
        match t with
        | Mtype.Set (Mtype.Class c) when Mtype.cname_name c = cls ->
            Some (Label.to_string l)
        | _ -> None)
      dbfields
  in
  let star = Schema_graph.star in
  let inverse_for cls field set =
    (* find a backward constraint with prefix <extent cls>.star and lhs
       field (with star when set-valued) *)
    match extent_of cls with
    | None -> None
    | Some e ->
        let lhs = if set then Path.of_labels [ Label.make field; star ] else Path.singleton (Label.make field) in
        List.find_map
          (fun c ->
            if
              Path.equal (Constr.prefix c) (Path.of_labels [ Label.make e; star ])
              && Path.equal (Constr.lhs c) lhs
            then
              match Path.to_labels (Constr.rhs c) with
              | g :: _ -> Some (Label.to_string g)
              | [] -> None
            else None)
          spec.inverse_constraints
  in
  List.iter
    (fun (c, body) ->
      let cls = Mtype.cname_name c in
      Buffer.add_string buf (Printf.sprintf "interface %s" cls);
      (match extent_of cls with
      | Some e -> Buffer.add_string buf (Printf.sprintf " (extent %s)" e)
      | None -> ());
      Buffer.add_string buf " {\n";
      (match body with
      | Mtype.Record fields ->
          List.iter
            (fun (l, t) ->
              let f = Label.to_string l in
              match t with
              | Mtype.Atomic b ->
                  Buffer.add_string buf
                    (Printf.sprintf "  attribute %s %s;\n" (odl_type_name b) f)
              | Mtype.Class d ->
                  let inv =
                    match inverse_for cls f false with
                    | Some g ->
                        Printf.sprintf " inverse %s::%s" (Mtype.cname_name d) g
                    | None -> ""
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "  relationship %s %s%s;\n"
                       (Mtype.cname_name d) f inv)
              | Mtype.Set (Mtype.Class d) ->
                  let inv =
                    match inverse_for cls f true with
                    | Some g ->
                        Printf.sprintf " inverse %s::%s" (Mtype.cname_name d) g
                    | None -> ""
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "  relationship set<%s> %s%s;\n"
                       (Mtype.cname_name d) f inv)
              | _ ->
                  Buffer.add_string buf
                    (Printf.sprintf "  // unrepresentable field %s\n" f))
            fields
      | _ -> ());
      Buffer.add_string buf "};\n")
    (Mschema.classes spec.schema);
  Buffer.contents buf

let paper_example =
  {|interface Book (extent book) {
  attribute String title;
  relationship set<Person> author inverse Person::wrote;
};
interface Person (extent person) {
  attribute String name;
  relationship set<Book> wrote inverse Book::author;
};|}
