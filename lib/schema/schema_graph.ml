module Label = Pathlang.Label
module Path = Pathlang.Path
module Constr = Pathlang.Constr

let star = Label.make "*"

let expand schema = function
  | Mtype.Class c -> Mschema.class_body schema c
  | t -> t

let out_edges schema tau =
  match expand schema tau with
  | Mtype.Atomic _ -> []
  | Mtype.Class _ ->
      (* nu(C) is never a class or atomic type, so expand is enough. *)
      assert false
  | Mtype.Set member -> [ (star, member) ]
  | Mtype.Record fields -> fields

let successor schema tau k =
  List.find_map
    (fun (l, t) -> if Label.equal l k then Some t else None)
    (out_edges schema tau)

let type_of_path schema rho =
  let rec go tau = function
    | [] -> Some tau
    | k :: rest -> (
        match successor schema tau k with
        | Some tau' -> go tau' rest
        | None -> None)
  in
  go (Mschema.dbtype schema) (Path.to_labels rho)

let in_paths schema rho = type_of_path schema rho <> None

let check_constraint_paths schema c =
  let rec first_bad = function
    | [] -> Ok ()
    | rho :: rest -> if in_paths schema rho then first_bad rest else Error rho
  in
  first_bad (Constr.paths_used c)

let sorts schema =
  let seen = ref Mtype.Set_of.empty in
  let rec visit tau =
    if not (Mtype.Set_of.mem tau !seen) then begin
      seen := Mtype.Set_of.add tau !seen;
      List.iter (fun (_, t) -> visit t) (out_edges schema tau)
    end
  in
  visit (Mschema.dbtype schema);
  Mtype.Set_of.elements !seen

let labels schema =
  List.fold_left
    (fun acc tau ->
      List.fold_left
        (fun acc (l, _) -> Label.Set.add l acc)
        acc (out_edges schema tau))
    Label.Set.empty (sorts schema)

(* The schema graph as an automaton over sorts: one state per member of
   T(Delta), a transition per edge of sigma(Delta), every state final
   (every realizable prefix is a word of Paths(Delta)).  State identity
   is the position in the returned sort array. *)
let automaton schema =
  let sort_list = sorts schema in
  let nfa = Automata.Nfa.create () in
  Automata.Nfa.ensure_states nfa (List.length sort_list);
  let index, _ =
    List.fold_left
      (fun (m, i) tau -> (Mtype.Map.add tau i m, i + 1))
      (Mtype.Map.empty, 0) sort_list
  in
  List.iter
    (fun tau ->
      let i = Mtype.Map.find tau index in
      Automata.Nfa.set_final nfa i;
      List.iter
        (fun (l, t) -> Automata.Nfa.add_trans nfa i l (Mtype.Map.find t index))
        (out_edges schema tau))
    sort_list;
  (nfa, Array.of_list sort_list, Mtype.Map.find (Mschema.dbtype schema) index)

let paths_up_to schema bound =
  let rec go acc rho tau depth =
    let acc = rho :: acc in
    if depth = 0 then acc
    else
      List.fold_left
        (fun acc (l, t) -> go acc (Path.snoc rho l) t (depth - 1))
        acc (out_edges schema tau)
  in
  List.rev (go [] Path.empty (Mschema.dbtype schema) bound)
