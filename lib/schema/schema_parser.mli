(** Concrete syntax for schemas.

    {v
      # bibliography schema (comments allowed)
      kind M
      class Person = [ name: string; SSN: string; wrote: Book ]
      class Book   = [ title: string; year: int; ref: Book; author: Person ]
      db = [ person: Person; book: Book ]
    v}

    Type expressions: an identifier is a class if declared by some
    [class] line and an atomic type otherwise; [{T}] is a set type;
    [[l1: T1; ...; ln: Tn]] is a record.  The [kind] line ([M] or [M+])
    is optional; when omitted the kind is inferred ([M] when the schema
    satisfies the M restrictions, [M+] otherwise). *)

type error = {
  line : int;  (** 1-based line of the offending token *)
  col : int;  (** 1-based column of the offending token *)
  token : string;  (** the offending token ([""] when not token-shaped) *)
  reason : string;  (** what is wrong, without position information *)
}
(** A structured parse error.  Schema-level validation failures (from
    [Mschema.make]) carry no source position and are anchored at 1:1. *)

val error_to_string : error -> string
(** ["line L, column C: at \"tok\": reason"]. *)

type spans = {
  class_spans : (string * Pathlang.Span.t) list;
      (** each declared class name and the span of its name token, in
          declaration order *)
  db_span : Pathlang.Span.t option;  (** span of the [db] keyword *)
}
(** Source locations of the declarations, for diagnostics. *)

val of_string_spanned : string -> (Mschema.t * spans, error) result

val load_spanned : string -> (Mschema.t * spans, error) result

val of_string : string -> (Mschema.t, string) result

val load : string -> (Mschema.t, string) result

val to_string : Mschema.t -> string
(** Renders in the same syntax; [of_string (to_string s)] reproduces
    the schema. *)
