module Path = Pathlang.Path
module Label = Pathlang.Label
module Mtype = Schema.Mtype
module Mschema = Schema.Mschema
module SG = Schema.Schema_graph
module Typecheck = Schema.Typecheck
module Graph = Sgraph.Graph
module Check = Sgraph.Check

type bounds = { max_per_class : int; max_per_atom : int; max_structures : int }

let default_bounds =
  { max_per_class = 2; max_per_atom = 1; max_structures = 200_000 }

let supported schema =
  let dbt = Mschema.dbtype schema in
  let value_sort s =
    match s with
    | Mtype.Set _ -> true
    | Mtype.Record _ -> not (Mtype.equal s dbt)
    | Mtype.Atomic _ | Mtype.Class _ -> false
  in
  if List.exists value_sort (SG.sorts schema) then
    Error
      "Typed_search: schemas with anonymous nested record/set values are not \
       supported"
  else Ok ()

(* All vectors (n_1..n_k) with n_i in 1..max, ordered by total size. *)
let count_vectors k max =
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun v -> List.init max (fun i -> (i + 1) :: v)) rest
  in
  List.sort
    (fun a b -> compare (List.fold_left ( + ) 0 a) (List.fold_left ( + ) 0 b))
    (go k)

type slot =
  | Choice of Graph.node * Label.t * Graph.node list
      (** record field: pick one target *)
  | Subset of Graph.node * Graph.node list
      (** set body: pick any subset of members *)

exception Found of Typecheck.t
exception Budget
exception Stopped
(* [Stopped] is the first-hit fan-out: a parallel task aborts its
   enumeration because a lower-index task already holds the witness. *)

let c_structures =
  Obs.Counter.make ~unit_:"structures" "typed_search.structures_built"

(* The node inventory and slot list of one count vector — everything
   [run_vector] needs, buildable without enumerating, so the parallel
   path can cost vectors up front. *)
type prepared = { total : int; sort_of : Mtype.t array; slots : slot list }

let prepare schema ~bounds ~classes ~atoms counts =
  (* node inventory: 0 = root, then classes, then atoms *)
  let next = ref 1 in
  let alloc n =
    let ids = List.init n (fun i -> !next + i) in
    next := !next + n;
    ids
  in
  let class_nodes = List.map2 (fun (c, _) n -> (c, alloc n)) classes counts in
  let atom_nodes = List.map (fun b -> (b, alloc bounds.max_per_atom)) atoms in
  let total = !next in
  let nodes_of_sort = function
    | Mtype.Class c -> List.assoc c class_nodes
    | Mtype.Atomic b -> List.assoc b atom_nodes
    | _ -> []
  in
  (* sort of every node *)
  let sort_of = Array.make total (Mschema.dbtype schema) in
  List.iter
    (fun (c, ids) -> List.iter (fun i -> sort_of.(i) <- Mtype.Class c) ids)
    class_nodes;
  List.iter
    (fun (b, ids) -> List.iter (fun i -> sort_of.(i) <- Mtype.Atomic b) ids)
    atom_nodes;
  (* slots *)
  let slots =
    List.concat
      (List.init total (fun n ->
           match SG.expand schema sort_of.(n) with
           | Mtype.Atomic _ -> []
           | Mtype.Record fields ->
               List.map
                 (fun (l, ft) -> Choice (n, l, nodes_of_sort ft))
                 fields
           | Mtype.Set m -> [ Subset (n, nodes_of_sort m) ]
           | Mtype.Class _ -> assert false))
  in
  { total; sort_of; slots }

(* Structures [run_vector] will build: the product of the slot choice
   counts, saturating at [max_int]; 0 when a record field has no
   available target (such a vector builds nothing). *)
let vector_cost p =
  if List.exists (function Choice (_, _, []) -> true | _ -> false) p.slots
  then 0
  else
    List.fold_left
      (fun acc s ->
        let c =
          match s with
          | Choice (_, _, targets) -> List.length targets
          | Subset (_, members) ->
              let m = List.length members in
              if m >= 62 then max_int else 1 lsl m
        in
        if acc > max_int / c then max_int else acc * c)
      1 p.slots

let sat_add a b = if a > max_int - b then max_int else a + b

(* Enumerate one prepared vector.  Raises [Found] on a witness,
   [Budget] when the shared structure budget or the controller trips,
   [Stopped] when the [?stop] hook fires between structures. *)
let run_vector ?stop ~budget ~ctl schema ~sigma ~phi p =
  let build assignment =
    (match stop with Some s when s () -> raise Stopped | _ -> ());
    Obs.Counter.incr c_structures;
    decr budget;
    if !budget < 0 then raise Budget;
    (match ctl with
    | Some c -> if not (Engine.tick c ()) then raise Budget
    | None -> ());
    let g = Graph.create () in
    for _ = 2 to p.total do
      ignore (Graph.add_node g)
    done;
    List.iter
      (function
        | `Edge (n, l, t) -> Graph.add_edge g n l t
        | `Members (n, ms) ->
            List.iter (fun m -> Graph.add_edge g n SG.star m) ms)
      assignment;
    if Check.holds_all g sigma && not (Check.holds g phi) then begin
      let typed =
        Typecheck.make g (List.init p.total (fun i -> (i, p.sort_of.(i))))
      in
      (* by construction this validates; keep the assertion cheap but
         real *)
      if Typecheck.validate schema typed = Ok () then raise (Found typed)
    end
  in
  if
    List.exists (function Choice (_, _, []) -> true | _ -> false) p.slots
    (* a record field with no available target kills the vector *)
  then ()
  else
    let rec enumerate acc = function
      | [] -> build acc
      | Choice (n, l, targets) :: rest ->
          List.iter (fun t -> enumerate (`Edge (n, l, t) :: acc) rest) targets
      | Subset (n, members) :: rest ->
          let m = List.length members in
          for mask = 0 to (1 lsl m) - 1 do
            let ms =
              List.filteri (fun i _ -> mask land (1 lsl i) <> 0) members
            in
            enumerate (`Members (n, ms) :: acc) rest
          done
    in
    enumerate [] p.slots

(* Below this many structures the fan-out overhead dwarfs the work. *)
let parallel_threshold = 64

(* Deterministic parallel search: one task per count vector, each with
   prefix-clamped slices of the structure and step budgets so the
   union of the explored regions is exactly the sequential scan's
   prefix; the least-vector-index witness wins (see DESIGN.md §15 for
   the determinism argument). *)
let find_par ~pool ~ctl ~bounds schema ~sigma ~phi ~classes ~atoms =
  let vectors = count_vectors (List.length classes) bounds.max_per_class in
  let prepared =
    Array.of_list (List.map (prepare schema ~bounds ~classes ~atoms) vectors)
  in
  let n = Array.length prepared in
  let costs = Array.map vector_cost prepared in
  let total_cost = Array.fold_left sat_add 0 costs in
  (* task i explores structures [prefix_i, prefix_i + a_i) of the
     sequential order, where a_i clamps the vector's cost against what
     is left of [limit] before it *)
  let allowance limit =
    let a = Array.make n 0 in
    let prefix = ref 0 in
    for i = 0 to n - 1 do
      let room = if !prefix >= limit then 0 else limit - !prefix in
      a.(i) <- min costs.(i) room;
      prefix := sat_add !prefix costs.(i)
    done;
    a
  in
  let struct_allow = allowance bounds.max_structures in
  let step_cap = Option.bind ctl Engine.remaining_steps in
  let step_allow = Option.map allowance step_cap in
  let subs = Array.make n None in
  let stop = Option.map Engine.interrupted ctl in
  let result =
    Par.find_min pool ?stop ~tasks:n (fun ~stop i ->
        let explore =
          match step_allow with
          | None -> struct_allow.(i)
          | Some sa -> min struct_allow.(i) sa.(i)
        in
        if explore = 0 then None
        else begin
          let sub =
            Option.map
              (fun c ->
                match step_allow with
                | Some sa -> Engine.fork c ~max_steps:sa.(i) ()
                | None -> Engine.fork c ())
              ctl
          in
          subs.(i) <- sub;
          let budget = ref struct_allow.(i) in
          match
            run_vector ~stop ~budget ~ctl:sub schema ~sigma ~phi prepared.(i)
          with
          | () -> None
          | exception Found t -> Some t
          | exception Budget -> None
          | exception Stopped -> None
        end)
  in
  (match ctl with
  | None -> ()
  | Some c ->
      (* fold the workers' accounting back in; with a decisive witness,
         racy slice exhaustions in losing tasks must not record a trip
         the sequential run would never have hit *)
      let trips = result = None in
      Array.iter
        (function Some sub -> Engine.absorb ~trips c sub | None -> ())
        subs;
      (* a task whose step slice was zero never forks a child, so the
         sequential would-have-tripped case is recorded explicitly *)
      (match step_cap with
      | Some cap when result = None && total_cost > cap ->
          Engine.trip c Verdict.Steps
      | _ -> ()));
  Ok result

let count_structures_value ~bounds schema ~classes ~atoms =
  List.fold_left
    (fun acc counts ->
      sat_add acc
        (vector_cost (prepare schema ~bounds ~classes ~atoms counts)))
    0
    (count_vectors (List.length classes) bounds.max_per_class)

let find_countermodel_inner ?ctl ?pool ~bounds schema ~sigma ~phi =
  match supported schema with
  | Error _ as e -> e
  | Ok () -> (
      let classes = Mschema.classes schema in
      let atoms =
        List.filter_map
          (function Mtype.Atomic b -> Some b | _ -> None)
          (SG.sorts schema)
      in
      let seq () =
        let budget = ref bounds.max_structures in
        try
          List.iter
            (fun counts ->
              run_vector ~budget ~ctl schema ~sigma ~phi
                (prepare schema ~bounds ~classes ~atoms counts))
            (count_vectors (List.length classes) bounds.max_per_class);
          Ok None
        with
        | Found t -> Ok (Some t)
        | Budget -> Ok None
      in
      match pool with
      | Some p
        when Par.jobs p > 1
             && count_structures_value ~bounds schema ~classes ~atoms
                >= parallel_threshold ->
          find_par ~pool:p ~ctl ~bounds schema ~sigma ~phi ~classes ~atoms
      | _ -> seq ())

let c_route_typed_search =
  Obs.Counter.tag
    (Obs.Counter.family ~unit_:"decisions" ~label:"route" "decision.route")
    "typed-search"

let find_countermodel ?ctl ?pool ?(bounds = default_bounds) schema ~sigma ~phi
    =
  Obs.Span.with_ "typed_search.find_countermodel" (fun () ->
      Obs.Counter.incr c_route_typed_search;
      find_countermodel_inner ?ctl ?pool ~bounds schema ~sigma ~phi)

let count_structures ?(bounds = default_bounds) schema =
  match supported schema with
  | Error _ as e -> e
  | Ok () ->
      let classes = Mschema.classes schema in
      let atoms =
        List.filter_map
          (function Mtype.Atomic b -> Some b | _ -> None)
          (SG.sorts schema)
      in
      Ok
        (min bounds.max_structures
           (count_structures_value ~bounds schema ~classes ~atoms))
