module Path = Pathlang.Path
module Label = Pathlang.Label
module Mtype = Schema.Mtype
module Mschema = Schema.Mschema
module SG = Schema.Schema_graph
module Typecheck = Schema.Typecheck
module Graph = Sgraph.Graph
module Check = Sgraph.Check

type bounds = { max_per_class : int; max_per_atom : int; max_structures : int }

let default_bounds =
  { max_per_class = 2; max_per_atom = 1; max_structures = 200_000 }

let supported schema =
  let dbt = Mschema.dbtype schema in
  let value_sort s =
    match s with
    | Mtype.Set _ -> true
    | Mtype.Record _ -> not (Mtype.equal s dbt)
    | Mtype.Atomic _ | Mtype.Class _ -> false
  in
  if List.exists value_sort (SG.sorts schema) then
    Error
      "Typed_search: schemas with anonymous nested record/set values are not \
       supported"
  else Ok ()

(* All vectors (n_1..n_k) with n_i in 1..max, ordered by total size. *)
let count_vectors k max =
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun v -> List.init max (fun i -> (i + 1) :: v)) rest
  in
  List.sort
    (fun a b -> compare (List.fold_left ( + ) 0 a) (List.fold_left ( + ) 0 b))
    (go k)

type slot =
  | Choice of Graph.node * Label.t * Graph.node list
      (** record field: pick one target *)
  | Subset of Graph.node * Graph.node list
      (** set body: pick any subset of members *)

exception Found of Typecheck.t
exception Budget

let c_structures =
  Obs.Counter.make ~unit_:"structures" "typed_search.structures_built"

let find_countermodel_inner ?ctl ~bounds schema ~sigma ~phi =
  match supported schema with
  | Error _ as e -> e
  | Ok () ->
      let classes = Mschema.classes schema in
      let atoms =
        List.filter_map
          (function Mtype.Atomic b -> Some b | _ -> None)
          (SG.sorts schema)
      in
      let budget = ref bounds.max_structures in
      let try_vector counts =
        (* node inventory: 0 = root, then classes, then atoms *)
        let next = ref 1 in
        let alloc n =
          let ids = List.init n (fun i -> !next + i) in
          next := !next + n;
          ids
        in
        let class_nodes = List.map2 (fun (c, _) n -> (c, alloc n)) classes counts in
        let atom_nodes =
          List.map (fun b -> (b, alloc bounds.max_per_atom)) atoms
        in
        let total = !next in
        let nodes_of_sort = function
          | Mtype.Class c ->
              List.assoc c class_nodes
          | Mtype.Atomic b -> List.assoc b atom_nodes
          | _ -> []
        in
        (* sort of every node *)
        let sort_of = Array.make total (Mschema.dbtype schema) in
        List.iter
          (fun (c, ids) -> List.iter (fun i -> sort_of.(i) <- Mtype.Class c) ids)
          class_nodes;
        List.iter
          (fun (b, ids) -> List.iter (fun i -> sort_of.(i) <- Mtype.Atomic b) ids)
          atom_nodes;
        (* slots *)
        let slots =
          List.concat
            (List.init total (fun n ->
                 match SG.expand schema sort_of.(n) with
                 | Mtype.Atomic _ -> []
                 | Mtype.Record fields ->
                     List.map
                       (fun (l, ft) -> Choice (n, l, nodes_of_sort ft))
                       fields
                 | Mtype.Set m -> [ Subset (n, nodes_of_sort m) ]
                 | Mtype.Class _ -> assert false))
        in
        (* a record field with no available target kills the vector *)
        if
          List.exists
            (function Choice (_, _, []) -> true | _ -> false)
            slots
        then ()
        else begin
          let build assignment =
            Obs.Counter.incr c_structures;
            decr budget;
            if !budget < 0 then raise Budget;
            (match ctl with
            | Some c -> if not (Engine.tick c ()) then raise Budget
            | None -> ());
            let g = Graph.create () in
            for _ = 2 to total do
              ignore (Graph.add_node g)
            done;
            List.iter
              (function
                | `Edge (n, l, t) -> Graph.add_edge g n l t
                | `Members (n, ms) ->
                    List.iter (fun m -> Graph.add_edge g n SG.star m) ms)
              assignment;
            if Check.holds_all g sigma && not (Check.holds g phi) then begin
              let typed =
                Typecheck.make g
                  (List.init total (fun i -> (i, sort_of.(i))))
              in
              (* by construction this validates; keep the assertion
                 cheap but real *)
              if Typecheck.validate schema typed = Ok () then
                raise (Found typed)
            end
          in
          let rec enumerate acc = function
            | [] -> build acc
            | Choice (n, l, targets) :: rest ->
                List.iter
                  (fun t -> enumerate (`Edge (n, l, t) :: acc) rest)
                  targets
            | Subset (n, members) :: rest ->
                let m = List.length members in
                for mask = 0 to (1 lsl m) - 1 do
                  let ms =
                    List.filteri (fun i _ -> mask land (1 lsl i) <> 0) members
                  in
                  enumerate (`Members (n, ms) :: acc) rest
                done
          in
          enumerate [] slots
        end
      in
      (try
         List.iter try_vector
           (count_vectors (List.length classes) bounds.max_per_class);
         Ok None
       with
      | Found t -> Ok (Some t)
      | Budget -> Ok None)

let c_route_typed_search =
  Obs.Counter.tag
    (Obs.Counter.family ~unit_:"decisions" ~label:"route" "decision.route")
    "typed-search"

let find_countermodel ?ctl ?(bounds = default_bounds) schema ~sigma ~phi =
  Obs.Span.with_ "typed_search.find_countermodel" (fun () ->
      Obs.Counter.incr c_route_typed_search;
      find_countermodel_inner ?ctl ~bounds schema ~sigma ~phi)

let count_structures ?(bounds = default_bounds) schema =
  match supported schema with
  | Error _ as e -> e
  | Ok () ->
      let classes = Mschema.classes schema in
      let atoms =
        List.filter_map
          (function Mtype.Atomic b -> Some b | _ -> None)
          (SG.sorts schema)
      in
      let total = ref 0 in
      (try
         List.iter
           (fun counts ->
             let sort_count = function
               | Mtype.Class c ->
                   let rec find cs ns =
                     match (cs, ns) with
                     | (c', _) :: _, n :: _
                       when Mtype.cname_name c' = Mtype.cname_name c ->
                         n
                     | _ :: cs, _ :: ns -> find cs ns
                     | _ -> 0
                   in
                   find classes counts
               | Mtype.Atomic _ ->
                   if atoms = [] then 0 else bounds.max_per_atom
               | _ -> 0
             in
             let node_choices sort =
               match SG.expand schema sort with
               | Mtype.Atomic _ -> 1
               | Mtype.Record fields ->
                   List.fold_left
                     (fun acc (_, ft) -> acc * max 1 (sort_count ft))
                     1 fields
               | Mtype.Set m -> 1 lsl sort_count m
               | Mtype.Class _ -> assert false
             in
             let pow b e =
               let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
               go 1 e
             in
             let per_vector =
               List.fold_left2
                 (fun acc (c, _) n -> acc * pow (node_choices (Mtype.Class c)) n)
                 (node_choices (Mschema.dbtype schema))
                 classes counts
             in
             total := !total + per_vector;
             if !total > bounds.max_structures then raise Exit)
           (count_vectors (List.length classes) bounds.max_per_class);
         Ok !total
       with Exit -> Ok bounds.max_structures)
