(** Bounded exhaustive search over typed structures: a brute-force
    semi-decision procedure for implication in the models M and M+.

    Implication under an M+ schema is undecidable (Theorems 5.2/6.1),
    so no complete procedure exists; what {e can} be built is an
    exhaustive enumerator of the finite abstract databases
    [U_f(Delta)] up to a size bound.  Finding a structure satisfying
    [Sigma /\ not phi] refutes [Sigma |=_Delta phi] outright; exhausting
    the bound proves nothing in general but is strong independent
    evidence on tiny instances — the test suite uses it to
    cross-validate both [Typed_m] (which must never claim [Implied]
    when a bounded countermodel exists) and the Lemma 5.4 reduction.

    Supported schemas: every field type and set-member type must be
    atomic or a class (true of M schemas by definition, of the paper's
    [Delta_1]/[Delta_2], and of any "flat" M+ schema).  Schemas with
    anonymous nested record/set values are rejected. *)

type bounds = {
  max_per_class : int;  (** nodes enumerated per class: 1..n *)
  max_per_atom : int;  (** leaf nodes per atomic sort: 1..n *)
  max_structures : int;  (** enumeration budget *)
}

val default_bounds : bounds
(** 2 per class, 1 per atomic sort, 200k structures. *)

val find_countermodel :
  ?ctl:Engine.t ->
  ?pool:Par.t ->
  ?bounds:bounds ->
  Schema.Mschema.t ->
  sigma:Pathlang.Constr.t list ->
  phi:Pathlang.Constr.t ->
  (Schema.Typecheck.t option, string) result
(** [Ok (Some t)] is a verified member of [U_f(Delta)] satisfying
    [Sigma /\ not phi]; [Ok None] means the bounded space holds no
    countermodel (or a budget ran out); [Error] on an unsupported
    schema.

    When a [ctl] controller is supplied, every candidate structure
    consumes one engine step and the controller's step budget, deadline
    and cancellation token all bound the search (on top of
    [bounds.max_structures]); query [Engine.tripped ctl] afterwards to
    distinguish an exhausted budget from an exhausted space.

    With a [?pool] of more than one domain, the count vectors are
    searched concurrently, one task per vector, each task holding a
    prefix-clamped slice of the structure and step budgets: the union
    of the explored regions is exactly the prefix the sequential scan
    explores, and the least-vector hit wins, so the verdict — witness,
    [None], and whether the step budget trips — is identical to the
    sequential run's (step {e counts} may differ on refuted instances,
    where workers race past the witness).  Each task ticks its own
    {!Engine.fork}ed child; the children are absorbed into [ctl] after
    the join. *)

val count_structures :
  ?bounds:bounds -> Schema.Mschema.t -> (int, string) result
(** How many structures the enumeration would visit (capped at the
    budget); useful to keep tests honest about coverage. *)
