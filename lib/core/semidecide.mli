(** Sound, budgeted semi-decision of P_c implication on semistructured
    data, governed by {!Engine}.

    The implication and finite implication problems for P_c (already for
    the fragment P_w(K)) are undecidable on untyped data (Theorems 4.1
    and 4.3), so the best possible general procedure combines
    semi-procedures for both answers:
    - the chase ({!Chase.implies}) derives positive answers and, on
      reaching a fixpoint, finite countermodels;
    - bounded exhaustive model search ({!Sgraph.Enumerate}) recovers
      small countermodels the chase misses when it diverges.

    Positive answers are sound for implication and finite implication
    alike; [Refuted] answers are finite models, i.e. sound for both as
    well.

    Both phases run under one controller: the chase consumes the
    step/node budget, and the enumeration fallback — which has its own
    size discipline — still honors the controller's deadline and
    cancellation token.  When the label alphabet forces the enumeration
    cap down (the search cost is [2^(L*n^2)]), the clamp is recorded in
    the exhaustion diagnostics and logged, never applied invisibly. *)

val implies :
  ?ctl:Engine.t ->
  ?pool:Par.t ->
  ?enum_nodes:int ->
  ?park:(Chase.Snapshot.t -> unit) ->
  ?resume:Chase.Snapshot.t ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  Verdict.t
(** [ctl] defaults to a fresh [Engine.default ()].  [enum_nodes] caps
    the exhaustive search (default 3; clamped to 2 when more than 2
    labels are in play — reported via diagnostics).  Set it to 0 to
    disable enumeration.

    [?pool] fans the enumeration fallback out across a [Par] pool
    (chunked mask space, least-mask witness): verdicts are byte-
    identical to the sequential search's.  The chase itself is
    inherently sequential (each repair feeds the next) and ignores the
    pool.

    [park]/[resume] are forwarded to {!Chase.implies}.  A chase that
    ends in [Unknown {reason = Crashed}] (an injected crash that parked
    a snapshot) skips the enumeration fallback: the right follow-up is
    resuming the parked chase, not a fresh bounded search.

    Before the chase runs, the hash-consed constraint store's syntactic
    pre-filter ({!Pathlang.Store.implies_syntactic}) is consulted; a hit
    returns [Implied] without consuming any budget (counted as
    [semidecide.prefilter_hits]).  The pre-filter is skipped whenever
    [park] or [resume] is supplied, so crash-injection and resumption
    always exercise the real chase. *)

val implies_escalating :
  ?base_steps:int ->
  ?base_nodes:int ->
  ?factor:int ->
  ?max_rounds:int ->
  ?timeout:float ->
  ?cancel:Engine.Cancel.t ->
  ?pool:Par.t ->
  ?enum_nodes:int ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  Verdict.t
(** {!implies} under {!Engine.escalate}: retry with geometrically
    growing step/node budgets (all rounds sharing one deadline and
    cancellation token) instead of one fixed shot — turning many fixed
    budget [Unknown]s into verdicts without risking divergence. *)
