module Constr = Pathlang.Constr
module Label = Pathlang.Label

let src =
  Logs.Src.create "pathcons.semidecide" ~doc:"chase + enumeration semi-decider"

module Log = (val Logs.src_log src : Logs.LOG)

let c_enum_fallbacks =
  Obs.Counter.make ~unit_:"calls" "semidecide.enum_fallbacks"

let c_prefilter_hits =
  Obs.Counter.make ~unit_:"calls" "semidecide.prefilter_hits"

let implies ?ctl ?(enum_nodes = 3) ?park ?resume ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  Obs.Span.with_ "semidecide.implies" (fun () ->
  (* Syntactic pre-filter: a containment derivation in the hash-consed
     store is a sound positive verdict that costs no chase budget.  Only
     when neither crash-injection hook is in play — a parked or resumed
     chase must actually run so its snapshot discipline is exercised. *)
  if
    park = None && resume = None
    && Pathlang.Store.implies_syntactic (Pathlang.Store.of_constraints sigma)
         phi
  then begin
    Obs.Counter.incr c_prefilter_hits;
    Verdict.Implied
  end
  else
  match Chase.implies ~ctl ?park ?resume ~sigma phi with
  | (Verdict.Implied | Verdict.Refuted _) as v -> v
  | Verdict.Unknown ({ Verdict.reason = Verdict.Crashed; _ } as e) ->
      (* A crash parked the chase state; enumeration would start a
         fresh search the interrupted operator did not ask for — the
         verdict must say "resume me", not burn more budget. *)
      Verdict.Unknown e
  | Verdict.Unknown _ ->
      if enum_nodes <= 0 || not (Engine.ok ctl) then
        Verdict.Unknown (Engine.exhaustion ctl)
      else begin
        let labels =
          Label.Set.elements
            (List.fold_left
               (fun acc c -> Label.Set.union acc (Constr.labels_used c))
               (Constr.labels_used phi) sigma)
        in
        let labels = if labels = [] then [ Label.make "a" ] else labels in
        (* Keep the brute-force search tractable — and say so: the cost
           is 2^(L*n^2), so a third label forces the size cap down. *)
        let max_nodes =
          if List.length labels > 2 && enum_nodes > 2 then begin
            let msg =
              Printf.sprintf
                "enumeration cap clamped from %d to 2 nodes (%d labels in \
                 play, search cost 2^(L*n^2))"
                enum_nodes (List.length labels)
            in
            Log.warn (fun m -> m "%s" msg);
            Engine.note ctl msg;
            2
          end
          else enum_nodes
        in
        Obs.Counter.incr c_enum_fallbacks;
        match
          Obs.Span.with_ "semidecide.enumerate"
            ~args:[ ("max_nodes", string_of_int max_nodes) ]
            (fun () ->
              Sgraph.Enumerate.find_countermodel
                ~interrupt:(Engine.interrupted ctl) ~max_nodes ~labels ~sigma
                ~phi ())
        with
        | Some g -> Verdict.Refuted g
        | None -> Verdict.Unknown (Engine.exhaustion ctl)
      end)

let implies_escalating ?base_steps ?base_nodes ?factor ?max_rounds ?timeout
    ?cancel ?(enum_nodes = 3) ~sigma phi =
  (* The enumeration space depends only on [enum_nodes] and the label
     alphabet, not on the chase budget: searching it once (in the first
     round) is enough. *)
  let enum_done = ref false in
  Engine.escalate ?base_steps ?base_nodes ?factor ?max_rounds ?timeout ?cancel
    (fun ctl ->
      let enum_nodes = if !enum_done then 0 else enum_nodes in
      enum_done := true;
      implies ~ctl ~enum_nodes ~sigma phi)
