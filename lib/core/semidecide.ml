module Constr = Pathlang.Constr
module Label = Pathlang.Label

let src =
  Logs.Src.create "pathcons.semidecide" ~doc:"chase + enumeration semi-decider"

module Log = (val Logs.src_log src : Logs.LOG)

let c_enum_fallbacks =
  Obs.Counter.make ~unit_:"calls" "semidecide.enum_fallbacks"

let c_prefilter_hits =
  Obs.Counter.make ~unit_:"calls" "semidecide.prefilter_hits"

let c_prefilter_misses =
  Obs.Counter.make ~unit_:"calls" "semidecide.prefilter_misses"

(* Decision provenance: which procedure answered, as one labeled
   family ([decision.route{route="chase"}], ...) plus a per-route
   latency histogram and — when the audit journal is on — one JSONL
   record per decision. *)
let f_routes = Obs.Counter.family ~unit_:"decisions" ~label:"route" "decision.route"

let latency_buckets = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let f_latency =
  Obs.Histogram.family ~unit_:"ns" ~buckets:latency_buckets ~label:"route"
    "decision.latency_ns"

let route_counters =
  [
    ("store-prefilter", (Obs.Counter.tag f_routes "store-prefilter",
                         Obs.Histogram.tag f_latency "store-prefilter"));
    ("chase", (Obs.Counter.tag f_routes "chase", Obs.Histogram.tag f_latency "chase"));
    ("enum", (Obs.Counter.tag f_routes "enum", Obs.Histogram.tag f_latency "enum"));
  ]

let audit_verdict = function
  | Verdict.Implied -> [ ("verdict", Obs.Json.String "implied") ]
  | Verdict.Refuted _ -> [ ("verdict", Obs.Json.String "refuted") ]
  | Verdict.Unknown e ->
      [
        ("verdict", Obs.Json.String "unknown");
        ("reason", Obs.Json.String (Verdict.reason_keyword e.Verdict.reason));
        ("rounds", Obs.Json.Int e.Verdict.rounds);
      ]

let audit_budgets ctl =
  [
    ("steps", Obs.Json.Int (Engine.steps ctl));
    ("peak_nodes", Obs.Json.Int (Engine.peak_nodes ctl));
    ("elapsed_ns", Obs.Json.Int (Int64.to_int (Engine.elapsed_ns ctl)));
  ]

let implies ?ctl ?pool ?(enum_nodes = 3) ?park ?resume ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  Obs.Span.with_ "semidecide.implies" (fun () ->
  let t0 = if Obs.enabled () || Obs.Audit.enabled () then Obs.now_ns () else 0L in
  let finish ~route ~prefilter v =
    (match List.assoc_opt route route_counters with
    | Some (c, h) ->
        Obs.Counter.incr c;
        Obs.Histogram.observe h
          (Int64.to_float (Int64.sub (Obs.now_ns ()) t0))
    | None -> ());
    if Obs.Audit.enabled () then
      Obs.Audit.emit "decision"
        ~fields:
          (( "route", Obs.Json.String route )
          :: ( "prefilter", Obs.Json.String prefilter )
          :: (audit_verdict v @ audit_budgets ctl));
    v
  in
  let prefilter_skipped = park <> None || resume <> None in
  (* Syntactic pre-filter: a containment derivation in the hash-consed
     store is a sound positive verdict that costs no chase budget.  Only
     when neither crash-injection hook is in play — a parked or resumed
     chase must actually run so its snapshot discipline is exercised. *)
  if
    (not prefilter_skipped)
    && Pathlang.Store.implies_syntactic (Pathlang.Store.of_constraints sigma)
         phi
  then begin
    Obs.Counter.incr c_prefilter_hits;
    finish ~route:"store-prefilter" ~prefilter:"hit" Verdict.Implied
  end
  else begin
  if not prefilter_skipped then Obs.Counter.incr c_prefilter_misses;
  let prefilter = if prefilter_skipped then "skipped" else "miss" in
  let finish ~route v = finish ~route ~prefilter v in
  match Chase.implies ~ctl ?park ?resume ~sigma phi with
  | (Verdict.Implied | Verdict.Refuted _) as v -> finish ~route:"chase" v
  | Verdict.Unknown ({ Verdict.reason = Verdict.Crashed; _ } as e) ->
      (* A crash parked the chase state; enumeration would start a
         fresh search the interrupted operator did not ask for — the
         verdict must say "resume me", not burn more budget. *)
      finish ~route:"chase" (Verdict.Unknown e)
  | Verdict.Unknown _ ->
      if enum_nodes <= 0 || not (Engine.ok ctl) then
        finish ~route:"chase" (Verdict.Unknown (Engine.exhaustion ctl))
      else begin
        let labels =
          Label.Set.elements
            (List.fold_left
               (fun acc c -> Label.Set.union acc (Constr.labels_used c))
               (Constr.labels_used phi) sigma)
        in
        let labels = if labels = [] then [ Label.make "a" ] else labels in
        (* Keep the brute-force search tractable — and say so: the cost
           is 2^(L*n^2), so a third label forces the size cap down. *)
        let max_nodes =
          if List.length labels > 2 && enum_nodes > 2 then begin
            let msg =
              Printf.sprintf
                "enumeration cap clamped from %d to 2 nodes (%d labels in \
                 play, search cost 2^(L*n^2))"
                enum_nodes (List.length labels)
            in
            Log.warn (fun m -> m "%s" msg);
            Engine.note ctl msg;
            2
          end
          else enum_nodes
        in
        Obs.Counter.incr c_enum_fallbacks;
        match
          Obs.Span.with_ "semidecide.enumerate"
            ~args:[ ("max_nodes", string_of_int max_nodes) ]
            (fun () ->
              Sgraph.Enumerate.find_countermodel
                ~interrupt:(Engine.interrupted ctl) ?pool ~max_nodes ~labels
                ~sigma ~phi ())
        with
        | Some g -> finish ~route:"enum" (Verdict.Refuted g)
        | None -> finish ~route:"enum" (Verdict.Unknown (Engine.exhaustion ctl))
      end
  end)

let implies_escalating ?base_steps ?base_nodes ?factor ?max_rounds ?timeout
    ?cancel ?pool ?(enum_nodes = 3) ~sigma phi =
  (* The enumeration space depends only on [enum_nodes] and the label
     alphabet, not on the chase budget: searching it once (in the first
     round) is enough. *)
  let enum_done = ref false in
  Engine.escalate ?base_steps ?base_nodes ?factor ?max_rounds ?timeout ?cancel
    (fun ctl ->
      let enum_nodes = if !enum_done then 0 else enum_nodes in
      enum_done := true;
      implies ~ctl ?pool ~enum_nodes ~sigma phi)
