module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module Bounded = Pathlang.Bounded
module Mschema = Schema.Mschema

type typed_outcome =
  | M_decided of Typed_m.outcome
  | Mplus_refuted of Schema.Typecheck.t
  | Mplus_open of string
  | Typed_error of string

type report = {
  word_untyped : bool option;
  local_extent : (Path.t * Label.t * bool) option;
  chase : Verdict.t;
  typed : typed_outcome option;
}

let try_word ~sigma phi =
  match Word_untyped.implies ~sigma phi with
  | Ok b -> Some b
  | Error _ -> None

let try_local ~sigma phi =
  (* use the canonical bound inferred from phi (the split at its last
     prefix label), if the whole set fits Definition 2.3 *)
  List.find_map
    (fun (alpha, k) ->
      match Local_extent.implies ~alpha ~k ~sigma ~phi with
      | Ok b -> Some (alpha, k, b)
      | Error _ -> None)
    (Bounded.infer_bound phi)

let try_typed ~budget ?search_bounds schema ~sigma phi =
  match Mschema.kind schema with
  | Mschema.M -> (
      match Typed_m.decide schema ~sigma ~phi with
      | Ok outcome -> M_decided outcome
      | Error e -> Typed_error e)
  | Mschema.M_plus -> (
      (* the search has its own structure budget (bounds.max_structures);
         the engine contributes the deadline and cancellation token *)
      let ctl =
        Engine.start
          { budget with Engine.Budget.max_steps = None; max_nodes = None }
      in
      match
        Typed_search.find_countermodel ~ctl ?bounds:search_bounds schema ~sigma
          ~phi
      with
      | Ok (Some t) -> Mplus_refuted t
      | Ok None -> (
          match Engine.tripped ctl with
          | Some _ ->
              Mplus_open
                (Format.asprintf "search gave up: %a" Verdict.pp_exhaustion
                   (Engine.exhaustion ctl))
          | None ->
              Mplus_open
                "no countermodel within the search bounds; M+ implication is \
                 undecidable (Theorem 5.2)")
      | Error e -> Typed_error e)

(* One audit record per 4-way comparison: the per-procedure outcomes
   side by side, which is the provenance the PC7xx interaction
   diagnostics are derived from. *)
let audit_compare r =
  if Obs.Audit.enabled () then begin
    let s v = Obs.Json.String v in
    Obs.Audit.emit "compare"
      ~fields:
        [
          ( "word",
            s
              (match r.word_untyped with
              | Some true -> "implied"
              | Some false -> "refuted"
              | None -> "n/a") );
          ( "local_extent",
            s
              (match r.local_extent with
              | Some (_, _, true) -> "implied"
              | Some (_, _, false) -> "refuted"
              | None -> "n/a") );
          ( "chase",
            s
              (match r.chase with
              | Verdict.Implied -> "implied"
              | Verdict.Refuted _ -> "refuted"
              | Verdict.Unknown _ -> "unknown") );
          ( "typed",
            s
              (match r.typed with
              | None -> "n/a"
              | Some (M_decided (Typed_m.Implied _)) -> "implied"
              | Some (M_decided (Typed_m.Not_implied _)) -> "refuted"
              | Some (M_decided (Typed_m.Vacuous _)) -> "vacuous"
              | Some (Mplus_refuted _) -> "refuted"
              | Some (Mplus_open _) -> "open"
              | Some (Typed_error _) -> "error") );
        ]
  end

let compare ?schema ?(budget = Engine.Budget.default) ?search_bounds ~sigma phi
    =
  Obs.Span.with_ "interaction.compare" (fun () ->
      let r =
        {
          word_untyped =
            Obs.Span.with_ "interaction.word" (fun () -> try_word ~sigma phi);
          local_extent =
            Obs.Span.with_ "interaction.local" (fun () -> try_local ~sigma phi);
          chase =
            Obs.Span.with_ "interaction.chase" (fun () ->
                Semidecide.implies ~ctl:(Engine.start budget) ~sigma phi);
          typed =
            Option.map
              (fun s ->
                Obs.Span.with_ "interaction.typed" (fun () ->
                    try_typed ~budget ?search_bounds s ~sigma phi))
              schema;
        }
      in
      audit_compare r;
      r)

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  (match r.word_untyped with
  | Some b -> Format.fprintf ppf "word constraints, untyped (PTIME): %b@," b
  | None -> Format.fprintf ppf "word constraints, untyped: not applicable@,");
  (match r.local_extent with
  | Some (alpha, k, b) ->
      Format.fprintf ppf "local extent, untyped (PTIME, bound (%a, %a)): %b@,"
        Path.pp alpha Label.pp k b
  | None -> Format.fprintf ppf "local extent, untyped: not applicable@,");
  Format.fprintf ppf "general P_c, untyped (chase): %a@," Verdict.pp r.chase;
  (match r.typed with
  | None -> ()
  | Some (M_decided (Typed_m.Implied d)) ->
      Format.fprintf ppf "under the M schema: implied (proof size %d)@,"
        (Axioms.size d)
  | Some (M_decided (Typed_m.Not_implied t)) ->
      Format.fprintf ppf
        "under the M schema: not implied (countermodel, %d nodes)@,"
        (Sgraph.Graph.node_count t.Schema.Typecheck.graph)
  | Some (M_decided (Typed_m.Vacuous m)) ->
      Format.fprintf ppf "under the M schema: vacuously implied (%s)@," m
  | Some (Mplus_refuted t) ->
      Format.fprintf ppf
        "under the M+ schema: not implied (countermodel, %d nodes)@,"
        (Sgraph.Graph.node_count t.Schema.Typecheck.graph)
  | Some (Mplus_open m) -> Format.fprintf ppf "under the M+ schema: open (%s)@," m
  | Some (Typed_error e) -> Format.fprintf ppf "typed: error (%s)@," e);
  Format.fprintf ppf "@]"
