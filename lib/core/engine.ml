let src =
  Logs.Src.create "pathcons.engine" ~doc:"resource-governed solver engine"

module Log = (val Logs.src_log src : Logs.LOG)

let now_ns = Monotonic_clock.now

(* observability: each governed call is accounted here; the exhaustion
   snapshot picks these (and every other module's counters) up *)
let c_ticks = Obs.Counter.make ~unit_:"steps" "engine.ticks"
let c_trips = Obs.Counter.make ~unit_:"trips" "engine.trips"
let c_rounds = Obs.Counter.make ~unit_:"rounds" "engine.escalation_rounds"
let c_peak_nodes = Obs.Counter.make ~unit_:"nodes" "engine.peak_nodes"

(* steps spent inside each escalation round; a heavy last bucket means
   the geometric growth schedule is doing real work *)
let h_round_steps = Obs.Histogram.make ~unit_:"steps" "engine.round_steps"

let reason_str = function
  | Verdict.Steps -> "steps"
  | Verdict.Nodes -> "nodes"
  | Verdict.Deadline -> "deadline"
  | Verdict.Cancelled -> "cancelled"
  | Verdict.Crashed -> "crashed"

module Cancel = struct
  type cause = Request | Sigint | Sigterm

  type t = cause option Atomic.t

  let create () : t = Atomic.make None

  (* First cause wins: a SIGTERM arriving after a SIGINT must not
     change the exit code the operator already earned.  The cell is
     atomic so the race is decided exactly once even when a signal
     handler and a worker domain's first-hit cancellation fire
     together. *)
  let cancel ?(cause = Request) t =
    ignore (Atomic.compare_and_set t None (Some cause))

  let is_cancelled t = Atomic.get t <> None
  let cause t = Atomic.get t

  let with_sigint t f =
    (* SIGTERM is handled identically to SIGINT: service supervisors
       terminate with SIGTERM, and a governed solver should park its
       state and exit 143 rather than die mid-repair. *)
    let install signal cause =
      match Sys.signal signal (Sys.Signal_handle (fun _ -> cancel ~cause t)) with
      | prev -> Some prev
      | exception (Invalid_argument _ | Sys_error _) ->
          (* no signal support on this platform: run ungoverned *)
          None
    in
    let restore signal = function
      | None -> ()
      | Some prev -> (
          try Sys.set_signal signal prev
          with Invalid_argument _ | Sys_error _ -> ())
    in
    let prev_int = install Sys.sigint Sigint in
    let prev_term = install Sys.sigterm Sigterm in
    Fun.protect
      ~finally:(fun () ->
        restore Sys.sigint prev_int;
        restore Sys.sigterm prev_term)
      f
end

module Budget = struct
  type t = {
    max_steps : int option;
    max_nodes : int option;
    timeout : float option;
    cancel : Cancel.t option;
  }

  let v ?max_steps ?max_nodes ?timeout ?cancel () =
    { max_steps; max_nodes; timeout; cancel }

  let default =
    { max_steps = Some 2000; max_nodes = Some 2000;
      timeout = Some 10.; cancel = None }

  let unlimited =
    { max_steps = None; max_nodes = None; timeout = None; cancel = None }

  let steps_nodes s n = { default with max_steps = Some s; max_nodes = Some n }
end

type t = {
  max_steps : int option;
  max_nodes : int option;
  deadline : int64 option;  (* absolute, monotonic ns *)
  cancel : Cancel.t option;
  started : int64;
  mutable steps : int;
  mutable peak_nodes : int;
  mutable rounds : int;
  tripped : Verdict.reason option Atomic.t;
      (* atomic so [ok]/[interrupted] may be polled from worker
         domains; the counting fields above stay owner-domain-only *)
  mutable rev_notes : string list;
}

let deadline_of ~started timeout =
  Option.map (fun s -> Int64.add started (Int64.of_float (s *. 1e9))) timeout

(* [spent_steps]/[spent_peak_nodes] pre-charge the controller with work
   a previous (crashed or parked) run already did, so a resumed run
   trips at the same absolute budget an uninterrupted run would — the
   invariant the differential resume harness checks. *)
let start ?(spent_steps = 0) ?(spent_peak_nodes = 0) (b : Budget.t) =
  let started = now_ns () in
  {
    max_steps = b.max_steps;
    max_nodes = b.max_nodes;
    deadline = deadline_of ~started b.timeout;
    cancel = b.cancel;
    started;
    steps = spent_steps;
    peak_nodes = spent_peak_nodes;
    rounds = 1;
    tripped = Atomic.make None;
    rev_notes = [];
  }

let default () = start Budget.default

(* Trips never downgrade: Cancelled/Crashed > Deadline > Steps/Nodes
   (first wins within a tier). *)
let rank = function
  | Verdict.Cancelled | Verdict.Crashed -> 3
  | Verdict.Deadline -> 2
  | Verdict.Steps | Verdict.Nodes -> 1

let rec trip t r =
  match Atomic.get t.tripped with
  | None ->
      if Atomic.compare_and_set t.tripped None (Some r) then begin
        Obs.Counter.incr c_trips;
        Obs.Span.event "engine.trip"
          ~args:[ ("reason", reason_str r); ("steps", string_of_int t.steps) ]
      end
      else trip t r
  | Some cur as prev ->
      if rank r > rank cur then
        if not (Atomic.compare_and_set t.tripped prev (Some r)) then trip t r

(* Deadline and cancellation are live conditions: they apply to every
   phase of a run, even after a step/node budget tripped. *)
let ok t =
  (match t.cancel with
  | Some c when Cancel.is_cancelled c -> trip t Verdict.Cancelled
  | _ -> ());
  (match t.deadline with
  | Some d when now_ns () >= d -> trip t Verdict.Deadline
  | _ -> ());
  match Atomic.get t.tripped with
  | Some (Verdict.Cancelled | Verdict.Deadline | Verdict.Crashed) -> false
  | Some (Verdict.Steps | Verdict.Nodes) | None -> true

let interrupted t () = not (ok t)

let tick t ?nodes () =
  t.steps <- t.steps + 1;
  Obs.Counter.incr c_ticks;
  Obs.Span.event "engine.tick";
  (match nodes with
  | Some n when n > t.peak_nodes ->
      t.peak_nodes <- n;
      Obs.Counter.set_max c_peak_nodes n
  | _ -> ());
  if not (ok t) then false
  else begin
    (match t.max_steps with
    | Some m when t.steps > m -> trip t Verdict.Steps
    | _ -> ());
    (match (nodes, t.max_nodes) with
    | Some n, Some m when n > m -> trip t Verdict.Nodes
    | _ -> ());
    Atomic.get t.tripped = None
  end

let note t s =
  if not (List.mem s t.rev_notes) then begin
    Log.info (fun m -> m "%s" s);
    t.rev_notes <- s :: t.rev_notes
  end

let steps t = t.steps
let peak_nodes t = t.peak_nodes
let elapsed_ns t = Int64.sub (now_ns ()) t.started
let tripped t = Atomic.get t.tripped
let notes t = List.rev t.rev_notes
let remaining_steps t = Option.map (fun m -> max 0 (m - t.steps)) t.max_steps

(* Budget splitting for the parallel fan-outs: a child controller
   carries its own step cap (the caller's deterministic slice of the
   parent's remaining budget) but shares the parent's absolute deadline,
   node cap and cancellation token — the live conditions must bind every
   worker identically.  The child is owned by exactly one task; [absorb]
   folds its accounting back into the parent after the join. *)
let fork t ?max_steps () =
  {
    max_steps;
    max_nodes = t.max_nodes;
    deadline = t.deadline;
    cancel = t.cancel;
    started = now_ns ();
    steps = 0;
    peak_nodes = 0;
    rounds = 1;
    tripped = Atomic.make None;
    rev_notes = [];
  }

let absorb ?(trips = true) t child =
  t.steps <- t.steps + child.steps;
  if child.peak_nodes > t.peak_nodes then t.peak_nodes <- child.peak_nodes;
  List.iter (fun n -> note t n) (List.rev child.rev_notes);
  if trips then
    match Atomic.get child.tripped with Some r -> trip t r | None -> ()

(* What the budget was spent doing: the synthetic consumed/remaining
   entries plus every instrumented module's live counters.  Only
   collected when the observability layer is on, so disabled-mode
   diagnostics are byte-identical to the uninstrumented ones. *)
let counters_snapshot t =
  if not (Obs.enabled ()) then []
  else begin
    let used_rem tag used cap =
      (Printf.sprintf "engine.budget.%s_used" tag, used)
      ::
      (match cap with
      | None -> []
      | Some m -> [ (Printf.sprintf "engine.budget.%s_remaining" tag, max 0 (m - used)) ])
    in
    used_rem "steps" t.steps t.max_steps
    @ used_rem "nodes" t.peak_nodes t.max_nodes
    @ Obs.Counter.snapshot ()
  end

let exhaustion t =
  {
    Verdict.reason = Option.value ~default:Verdict.Steps (Atomic.get t.tripped);
    steps = t.steps;
    nodes = t.peak_nodes;
    elapsed_ns = elapsed_ns t;
    rounds = t.rounds;
    notes = notes t;
    counters = counters_snapshot t;
  }

let escalate ?(base_steps = 64) ?(base_nodes = 64) ?(factor = 4)
    ?(max_rounds = 8) ?timeout ?cancel attempt =
  let started = now_ns () in
  let deadline = deadline_of ~started timeout in
  let total_steps = ref 0 and peak = ref 0 and all_notes = ref [] in
  let absorb ctl =
    total_steps := !total_steps + ctl.steps;
    if ctl.peak_nodes > !peak then peak := ctl.peak_nodes;
    List.iter
      (fun n -> if not (List.mem n !all_notes) then all_notes := n :: !all_notes)
      ctl.rev_notes
  in
  let give_up reason round =
    Verdict.Unknown
      {
        Verdict.reason;
        steps = !total_steps;
        nodes = !peak;
        elapsed_ns = Int64.sub (now_ns ()) started;
        rounds = round;
        notes = List.rev !all_notes;
        counters = (if Obs.enabled () then Obs.Counter.snapshot () else []);
      }
  in
  let grow n = if n > max_int / factor then n else n * factor in
  let rec go round step_cap node_cap =
    if round > max_rounds then give_up Verdict.Steps max_rounds
    else begin
      Log.debug (fun m ->
          m "escalation round %d/%d: %d steps, %d nodes" round max_rounds
            step_cap node_cap);
      Obs.Counter.incr c_rounds;
      Obs.Span.event "engine.escalate.round"
        ~args:
          [
            ("round", string_of_int round);
            ("step_cap", string_of_int step_cap);
            ("node_cap", string_of_int node_cap);
          ];
      let ctl =
        {
          max_steps = Some step_cap;
          max_nodes = Some node_cap;
          deadline;
          cancel;
          started = now_ns ();
          steps = 0;
          peak_nodes = 0;
          rounds = 1;
          tripped = Atomic.make None;
          rev_notes = [];
        }
      in
      let v = attempt ctl in
      absorb ctl;
      if Obs.enabled () then
        Obs.Histogram.observe h_round_steps (float_of_int ctl.steps);
      match v with
      | (Verdict.Implied | Verdict.Refuted _) as v -> v
      | Verdict.Unknown ex -> (
          match ex.Verdict.reason with
          | Verdict.Deadline | Verdict.Cancelled | Verdict.Crashed ->
              give_up ex.Verdict.reason round
          | Verdict.Steps | Verdict.Nodes ->
              go (round + 1) (grow step_cap) (grow node_cap))
    end
  in
  Obs.Span.with_ "engine.escalate" (fun () -> go 1 base_steps base_nodes)
