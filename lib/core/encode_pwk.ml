module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module Fragment = Pathlang.Fragment
module Graph = Sgraph.Graph
module Presentation = Monoid.Presentation
module Hom = Monoid.Hom
module FM = Monoid.Finite_monoid

let default_k pres =
  let gens = List.map Label.to_string (Presentation.gens pres) in
  let rec go name = if List.mem name gens then go (name ^ "'") else name in
  Label.make (go "K")

let encode ?k pres =
  let k = match k with Some k -> k | None -> default_k pres in
  if List.exists (Label.equal k) (Presentation.gens pres) then
    invalid_arg "Encode_pwk.encode: K collides with a generator";
  let kp = Path.singleton k in
  let base =
    Constr.word ~lhs:Path.empty ~rhs:kp
    :: List.map
         (fun l -> Constr.word ~lhs:(Path.snoc kp l) ~rhs:kp)
         (Presentation.gens pres)
  in
  let eqs =
    List.concat_map
      (fun (u, v) ->
        [
          Constr.forward ~prefix:kp ~lhs:u ~rhs:v;
          Constr.forward ~prefix:kp ~lhs:v ~rhs:u;
        ])
      (Presentation.relations pres)
  in
  base @ eqs

let encode_test (alpha, beta) =
  (Constr.word ~lhs:alpha ~rhs:beta, Constr.word ~lhs:beta ~rhs:alpha)

let in_fragment ~k sigma = Fragment.check_all (Fragment.in_pw_k ~k) sigma

let figure2 ?k hom =
  let m = Hom.monoid hom in
  let gen_map = Hom.gen_map hom in
  let k =
    match k with
    | Some k -> k
    | None ->
        let gens = List.map (fun (g, _) -> Label.to_string g) gen_map in
        let rec go name = if List.mem name gens then go (name ^ "'") else name in
        Label.make (go "K")
  in
  (* Reachable submonoid from the identity under right multiplication by
     generator images. *)
  let g = Graph.create () in
  let node_of = Hashtbl.create 16 in
  Hashtbl.replace node_of (FM.one m) (Graph.root g);
  let rec close frontier =
    match frontier with
    | [] -> ()
    | x :: rest ->
        let next =
          List.filter_map
            (fun (_, img) ->
              let y = FM.mul m x img in
              if Hashtbl.mem node_of y then None
              else begin
                Hashtbl.replace node_of y (Graph.add_node g);
                Some y
              end)
            gen_map
        in
        close (rest @ next)
  in
  close [ FM.one m ];
  (* l_j edges along the Cayley action, K edges from the root to all. *)
  Hashtbl.iter
    (fun x n ->
      Graph.add_edge g (Graph.root g) k n;
      List.iter
        (fun (lj, img) -> Graph.add_edge g n lj (Hashtbl.find node_of (FM.mul m x img)))
        gen_map)
    node_of;
  g

let demo ?(chase_budget = Engine.Budget.default) pres (alpha, beta) =
  let sigma = encode pres in
  let phi1, phi2 = encode_test (alpha, beta) in
  let monoid_verdict = Monoid.Word_problem.decide pres (alpha, beta) in
  let v1 =
    Semidecide.implies ~ctl:(Engine.start chase_budget) ~enum_nodes:0 ~sigma
      phi1
  in
  let v2 =
    Semidecide.implies ~ctl:(Engine.start chase_budget) ~enum_nodes:0 ~sigma
      phi2
  in
  (monoid_verdict, v1, v2)
