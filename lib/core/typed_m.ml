module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module Mschema = Schema.Mschema
module Mtype = Schema.Mtype
module SG = Schema.Schema_graph
module Typecheck = Schema.Typecheck
module Graph = Sgraph.Graph

type outcome =
  | Implied of Axioms.t
  | Not_implied of Typecheck.t
  | Vacuous of string

let to_word_equality c =
  let alpha = Constr.prefix c in
  match Constr.kind c with
  | Constr.Forward ->
      (Path.concat alpha (Constr.lhs c), Path.concat alpha (Constr.rhs c))
  | Constr.Backward ->
      (alpha, Path.concat alpha (Path.concat (Constr.lhs c) (Constr.rhs c)))

(* ------------------------------------------------------------------ *)
(* Congruence closure over the prefix-closed set of mentioned paths,
   with a proof forest for I_r certificate extraction.                 *)
(* ------------------------------------------------------------------ *)

let c_unions = Obs.Counter.make ~unit_:"merges" "typed_m.unions"

let c_route_typed_m =
  Obs.Counter.tag
    (Obs.Counter.family ~unit_:"decisions" ~label:"route" "decision.route")
    "typed-m"

let h_latency_typed_m =
  Obs.Histogram.tag
    (Obs.Histogram.family ~unit_:"ns"
       ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]
       ~label:"route" "decision.latency_ns")
    "typed-m"
let c_congruences =
  Obs.Counter.make ~unit_:"propagations" "typed_m.congruence_propagations"
let c_classes = Obs.Counter.make ~unit_:"paths" "typed_m.closure_paths"

type reason = By_input of Axioms.t | By_congruence of int * int * Label.t

type forest_edge = { other : int; reason : reason; stamp : int }

type state = {
  paths : Path.t array;
  sorts : Mtype.t array;
  parent : int array;
  rank : int array;
  succ : (int, (int * int) Label.Map.t) Hashtbl.t;
      (** rep -> label -> (successor node, witness parent node); the
          witness [w] satisfies [paths.(succ) = paths.(w) . label] *)
  forest : (int, forest_edge list) Hashtbl.t;
  mutable clock : int;
}

exception Clash of string

let rec find st n =
  let p = st.parent.(n) in
  if p = n then n
  else begin
    let r = find st p in
    st.parent.(n) <- r;
    r
  end

let succ_map st r = Option.value ~default:Label.Map.empty (Hashtbl.find_opt st.succ r)

let forest_add st a b reason =
  let stamp = st.clock in
  st.clock <- stamp + 1;
  let push n e =
    Hashtbl.replace st.forest n
      (e :: Option.value ~default:[] (Hashtbl.find_opt st.forest n))
  in
  push a { other = b; reason; stamp };
  push b { other = a; reason; stamp }

let rec union st a b reason =
  let ra = find st a and rb = find st b in
  if ra <> rb then begin
    Obs.Counter.incr c_unions;
    (match reason with
    | By_congruence _ -> Obs.Counter.incr c_congruences
    | By_input _ -> ());
    if not (Mtype.equal st.sorts.(ra) st.sorts.(rb)) then
      raise
        (Clash
           (Format.asprintf
              "paths %a (sort %s) and %a (sort %s) are forced equal"
              Path.pp st.paths.(a)
              (Mtype.to_string st.sorts.(ra))
              Path.pp st.paths.(b)
              (Mtype.to_string st.sorts.(rb))));
    forest_add st a b reason;
    let big, small = if st.rank.(ra) >= st.rank.(rb) then (ra, rb) else (rb, ra) in
    st.parent.(small) <- big;
    if st.rank.(big) = st.rank.(small) then st.rank.(big) <- st.rank.(big) + 1;
    let ms = succ_map st small and mb = succ_map st big in
    Hashtbl.remove st.succ small;
    let merged, pending =
      Label.Map.fold
        (fun l (sn, wn) (acc, pending) ->
          match Label.Map.find_opt l acc with
          | Some (sn', wn') -> (acc, (sn, sn', wn, wn', l) :: pending)
          | None -> (Label.Map.add l (sn, wn) acc, pending))
        ms (mb, [])
    in
    Hashtbl.replace st.succ big merged;
    List.iter
      (fun (sn, sn', wn, wn', l) -> union st sn sn' (By_congruence (wn, wn', l)))
      pending
  end

(* Certificate extraction: the unique forest path between two congruent
   nodes, restricted to edges older than [before] (so that recursive
   explanations of congruence edges terminate). *)
let rec explain st ~before a b =
  if a = b then Axioms.Reflexivity st.paths.(a)
  else begin
    (* BFS for the path a ~> b over old-enough edges. *)
    let prev = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.add prev a None;
    Queue.add a q;
    let rec bfs () =
      if Hashtbl.mem prev b then ()
      else if Queue.is_empty q then
        invalid_arg "Typed_m.explain: nodes not connected in proof forest"
      else begin
        let n = Queue.pop q in
        List.iter
          (fun e ->
            if e.stamp < before && not (Hashtbl.mem prev e.other) then begin
              Hashtbl.add prev e.other (Some (n, e));
              Queue.add e.other q
            end)
          (Option.value ~default:[] (Hashtbl.find_opt st.forest n));
        bfs ()
      end
    in
    bfs ();
    (* Reconstruct edge list from a to b. *)
    let rec backtrack n acc =
      match Hashtbl.find prev n with
      | None -> acc
      | Some (p, e) -> backtrack p ((p, n, e) :: acc)
    in
    let edges = backtrack b [] in
    let derivation_of_edge (u, v, e) =
      (* wanted conclusion: word (paths u -> paths v) *)
      let base =
        match e.reason with
        | By_input d -> d
        | By_congruence (wu, wv, l) ->
            Axioms.Right_congruence
              (explain st ~before:e.stamp wu wv, Path.singleton l)
      in
      match Axioms.conclusion base with
      | Ok c when Constr.is_word c && Path.equal (Constr.lhs c) st.paths.(u)
                  && Path.equal (Constr.rhs c) st.paths.(v) ->
          base
      | Ok _ -> Axioms.Commutativity base
      | Error e -> invalid_arg ("Typed_m.explain: malformed step: " ^ e)
    in
    match List.map derivation_of_edge edges with
    | [] -> assert false
    | d :: ds -> List.fold_left (fun acc d' -> Axioms.Transitivity (acc, d')) d ds
  end

(* ------------------------------------------------------------------ *)

let input_derivation c =
  if Constr.is_word c then Axioms.Axiom c
  else
    match Constr.kind c with
    | Constr.Forward -> Axioms.Forward_to_word (Axioms.Axiom c)
    | Constr.Backward -> Axioms.Backward_to_word (Axioms.Axiom c)

let wrap_for phi d =
  if Constr.is_word phi then d
  else
    match Constr.kind phi with
    | Constr.Forward -> Axioms.Word_to_forward (d, Constr.prefix phi)
    | Constr.Backward ->
        Axioms.Word_to_backward (d, Constr.prefix phi, Constr.lhs phi)

let build_state schema all_paths =
  (* prefix closure *)
  let closure =
    List.fold_left
      (fun acc p ->
        List.fold_left (fun acc q -> Path.Set.add q acc) acc (Path.prefixes p))
      Path.Set.empty all_paths
  in
  let paths = Array.of_list (Path.Set.elements closure) in
  let ids =
    Array.to_seqi paths
    |> Seq.fold_left (fun m (i, p) -> Path.Map.add p i m) Path.Map.empty
  in
  let n = Array.length paths in
  let sorts =
    Array.map
      (fun p ->
        match SG.type_of_path schema p with
        | Some tau -> tau
        | None -> assert false (* validated upstream *))
      paths
  in
  let st =
    {
      paths;
      sorts;
      parent = Array.init n Fun.id;
      rank = Array.make n 0;
      succ = Hashtbl.create (2 * n);
      forest = Hashtbl.create (2 * n);
      clock = 0;
    }
  in
  Array.iteri
    (fun i p ->
      match Path.split_last p with
      | None -> ()
      | Some (parent_path, l) ->
          let pi = Path.Map.find parent_path ids in
          Hashtbl.replace st.succ pi (Label.Map.add l (i, pi) (succ_map st pi)))
    paths;
  (st, ids)

(* Countermodel: congruence classes plus generic per-sort nodes. *)
let countermodel schema st =
  let g = Graph.create () in
  let typed = Typecheck.make g [] in
  let class_node = Hashtbl.create 16 in
  let root_rep = find st 0 in
  (* node 0 in [st] is the empty path: Path.Set orders by shortlex so eps
     is always index 0. *)
  assert (Path.is_empty st.paths.(0));
  Hashtbl.replace class_node root_rep (Graph.root g);
  Typecheck.set_type typed (Graph.root g) st.sorts.(root_rep);
  Array.iteri
    (fun i _ ->
      let r = find st i in
      if not (Hashtbl.mem class_node r) then begin
        let n = Graph.add_node g in
        Hashtbl.replace class_node r n;
        Typecheck.set_type typed n st.sorts.(r)
      end)
    st.paths;
  let generic = Hashtbl.create 16 in
  let rec generic_node tau =
    let key = Mtype.to_string tau in
    match Hashtbl.find_opt generic key with
    | Some n -> n
    | None ->
        let n = Graph.add_node g in
        Hashtbl.replace generic key n;
        Typecheck.set_type typed n tau;
        List.iter
          (fun (l, ft) -> Graph.add_edge g n l (generic_node ft))
          (SG.out_edges schema tau);
        n
  in
  Hashtbl.iter
    (fun r gnode ->
      let map = succ_map st r in
      List.iter
        (fun (l, ft) ->
          match Label.Map.find_opt l map with
          | Some (sn, _) -> Graph.add_edge g gnode l (Hashtbl.find class_node (find st sn))
          | None -> Graph.add_edge g gnode l (generic_node ft))
        (SG.out_edges schema st.sorts.(r)))
    (Hashtbl.copy class_node);
  typed

(* Shared setup: validate, convert, materialize, saturate.  Returns the
   closed state (or the clash message) together with the node lookup. *)
let run_closure schema ~sigma ~extra_paths =
  if Mschema.kind schema <> Mschema.M then
    Error "Typed_m: schema is not of kind M"
  else
    let bad =
      List.find_map
        (fun c ->
          match SG.check_constraint_paths schema c with
          | Ok () -> None
          | Error rho -> Some (c, rho))
        sigma
    in
    match bad with
    | Some (c, rho) ->
        Error
          (Format.asprintf "constraint %a mentions %a, not in Paths(Delta)"
             Constr.pp c Path.pp rho)
    | None ->
        let inputs =
          List.map (fun c -> (to_word_equality c, input_derivation c)) sigma
        in
        let all_paths =
          (* the empty path is always materialized so that the root class
             exists even for empty inputs *)
          Path.empty :: extra_paths
          @ List.concat_map (fun ((u, v), _) -> [ u; v ]) inputs
        in
        Obs.Span.with_ "typed_m.closure"
          ~args:[ ("sigma", string_of_int (List.length sigma)) ]
          (fun () ->
            let st, ids = build_state schema all_paths in
            Obs.Counter.add c_classes (Array.length st.paths);
            let node p = Path.Map.find p ids in
            let run () =
              List.iter
                (fun ((u, v), d) -> union st (node u) (node v) (By_input d))
                inputs
            in
            match run () with
            | () -> Ok (`Closed (st, node))
            | exception Clash msg -> Ok (`Clash msg))

let audit_typed_m phi outcome elapsed_ns =
  if Obs.Audit.enabled () then
    Obs.Audit.emit "decision"
      ~fields:
        [
          ("route", Obs.Json.String "typed-m");
          ("prefilter", Obs.Json.String "n/a");
          ( "verdict",
            Obs.Json.String
              (match outcome with
              | Implied _ -> "implied"
              | Not_implied _ -> "refuted"
              | Vacuous _ -> "vacuous") );
          ("phi", Obs.Json.String (Format.asprintf "%a" Constr.pp phi));
          ("elapsed_ns", Obs.Json.Int (Int64.to_int elapsed_ns));
        ]

let decide schema ~sigma ~phi =
  match SG.check_constraint_paths schema phi with
  | Error rho ->
      Error
        (Format.asprintf "constraint %a mentions %a, not in Paths(Delta)"
           Constr.pp phi Path.pp rho)
  | Ok () -> (
      Obs.Span.with_ "typed_m.decide" (fun () ->
      let t0 =
        if Obs.enabled () || Obs.Audit.enabled () then Obs.now_ns () else 0L
      in
      let finish outcome =
        if Obs.enabled () || Obs.Audit.enabled () then begin
          let elapsed = Int64.sub (Obs.now_ns ()) t0 in
          Obs.Counter.incr c_route_typed_m;
          Obs.Histogram.observe h_latency_typed_m (Int64.to_float elapsed);
          audit_typed_m phi outcome elapsed
        end;
        Ok outcome
      in
      let s_path, t_path = to_word_equality phi in
      match run_closure schema ~sigma ~extra_paths:[ s_path; t_path ] with
      | Error _ as e -> e
      | Ok (`Clash msg) -> finish (Vacuous msg)
      | Ok (`Closed (st, node)) ->
          let s = node s_path and t = node t_path in
          if find st s = find st t then begin
            let d =
              Obs.Span.with_ "typed_m.explain" (fun () ->
                  explain st ~before:max_int s t)
            in
            finish (Implied (wrap_for phi d))
          end
          else
            finish
              (Not_implied
                 (Obs.Span.with_ "typed_m.countermodel" (fun () ->
                      countermodel schema st)))))

let implies schema ~sigma ~phi =
  match decide schema ~sigma ~phi with
  | Ok (Implied _ | Vacuous _) -> Ok true
  | Ok (Not_implied _) -> Ok false
  | Error e -> Error e

let satisfiable schema ~sigma =
  match run_closure schema ~sigma ~extra_paths:[] with
  | Error e -> Error e
  | Ok (`Clash _) -> Ok false
  | Ok (`Closed _) -> Ok true

let equivalence_classes schema ~sigma ~max_len =
  let universe = SG.paths_up_to schema max_len in
  match run_closure schema ~sigma ~extra_paths:universe with
  | Error e -> Error e
  | Ok (`Clash msg) -> Error ("unsatisfiable: " ^ msg)
  | Ok (`Closed (st, node)) ->
      let by_rep = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let r = find st (node p) in
          Hashtbl.replace by_rep r
            (p :: Option.value ~default:[] (Hashtbl.find_opt by_rep r)))
        universe;
      Ok
        (Hashtbl.fold (fun _ ps acc -> List.rev ps :: acc) by_rep []
        |> List.sort (fun a b -> Path.compare (List.hd a) (List.hd b)))

let canonical_model schema ~sigma =
  match run_closure schema ~sigma ~extra_paths:[] with
  | Error e -> Error e
  | Ok (`Clash msg) -> Error ("unsatisfiable: " ^ msg)
  | Ok (`Closed (st, _)) -> Ok (countermodel schema st)

(* ------------------------------------------------------------------ *)

let random_walk ~rng schema start max_len =
  let len = Random.State.int rng (max_len + 1) in
  let rec go tau acc k =
    if k = 0 then (Path.of_labels (List.rev acc), tau)
    else
      match SG.out_edges schema tau with
      | [] -> (Path.of_labels (List.rev acc), tau)
      | edges ->
          let l, tau' = List.nth edges (Random.State.int rng (List.length edges)) in
          go tau' (l :: acc) (k - 1)
  in
  go start [] len

let walk_to_sort ~rng schema start target max_len =
  let rec attempt k =
    if k = 0 then None
    else
      let p, tau = random_walk ~rng schema start max_len in
      if Mtype.equal tau target then Some p else attempt (k - 1)
  in
  attempt 50

let random_constraints ~rng ~schema ~count ~max_len =
  let dbt = Mschema.dbtype schema in
  let sort_of p =
    match SG.type_of_path schema p with Some t -> t | None -> assert false
  in
  let rec make ?(fuel = 200) n acc =
    if n = 0 then acc
    else if fuel = 0 then
      (* Schema shape frustrates sampling (e.g. no cycles back): emit a
         trivially satisfiable forward constraint and move on. *)
      let alpha, _ = random_walk ~rng schema dbt max_len in
      let beta, _ = random_walk ~rng schema dbt 0 in
      make (n - 1) (Constr.forward ~prefix:alpha ~lhs:beta ~rhs:beta :: acc)
    else
      let alpha, tau_x =
        if Random.State.int rng 3 = 0 then (Path.empty, dbt)
        else random_walk ~rng schema dbt max_len
      in
      let beta, tau_y = random_walk ~rng schema tau_x max_len in
      let choice = Random.State.int rng 3 in
      let c =
        if choice = 2 && not (Path.is_empty beta) then
          (* backward: need gamma from tau_y back to sort of alpha *)
          match walk_to_sort ~rng schema tau_y tau_x max_len with
          | Some gamma -> Some (Constr.backward ~prefix:alpha ~lhs:beta ~rhs:gamma)
          | None -> None
        else
          match walk_to_sort ~rng schema tau_x tau_y max_len with
          | Some gamma ->
              if choice = 0 then
                Some
                  (Constr.word
                     ~lhs:(Path.concat alpha beta)
                     ~rhs:(Path.concat alpha gamma))
              else Some (Constr.forward ~prefix:alpha ~lhs:beta ~rhs:gamma)
          | None -> None
      in
      match c with
      | Some c ->
          ignore (sort_of (Constr.prefix c));
          make (n - 1) (c :: acc)
      | None -> make ~fuel:(fuel - 1) n acc
  in
  make count []
