(** Resource-governed solver runtime.

    Three of the paper's Table 1 cells are undecidable (Theorems
    4.1/4.3/5.2), so the chase- and enumeration-based semi-deciders can
    legitimately diverge.  Every potentially-divergent entry point
    ({!Chase}, {!Semidecide}, {!Typed_search}, and — via its
    [?interrupt] hook — [Sgraph.Enumerate]) therefore runs under a
    controller created here: a composable budget (steps, nodes,
    wall-clock deadline on a monotonic clock), a cooperative
    cancellation token (wired to SIGINT in [pathctl]), and an
    iterative-deepening driver {!escalate} that retries under
    geometrically growing budgets instead of one fixed shot.

    A controller is single-use: create one per solver call, query its
    {!exhaustion} afterwards for diagnostics. *)

val now_ns : unit -> int64
(** The monotonic clock, in nanoseconds.  Unrelated to wall-clock time
    of day; only differences are meaningful. *)

(** Cooperative cancellation tokens. *)
module Cancel : sig
  type t

  type cause = Request | Sigint | Sigterm
  (** What requested the cancellation.  [pathctl] maps this to the
      conventional exit codes (130 for SIGINT, 143 for SIGTERM). *)

  val create : unit -> t

  val cancel : ?cause:cause -> t -> unit
  (** Defaults to [Request].  The first cause wins; later calls are
      ignored.  The cell is an [Atomic.t], so concurrent cancellation
      from a signal handler and from worker domains (the parallel
      searches' first-hit fan-out) resolves race-free. *)

  val is_cancelled : t -> bool

  val cause : t -> cause option
  (** [None] until cancelled. *)

  val with_sigint : t -> (unit -> 'a) -> 'a
  (** Runs the thunk with SIGINT and SIGTERM handlers that cancel [t]
      with the matching cause (restoring the previous handlers
      afterwards), so Ctrl-C or a supervisor's TERM makes a governed
      solver return [Unknown {reason = Cancelled}] with partial
      diagnostics — and park its snapshot, if asked — instead of
      killing the process. *)
end

(** Declarative resource limits.  [None] means unlimited. *)
module Budget : sig
  type t = {
    max_steps : int option;  (** solver steps (chase repairs, candidates) *)
    max_nodes : int option;  (** peak nodes of any constructed model *)
    timeout : float option;  (** wall-clock seconds from {!start} *)
    cancel : Cancel.t option;  (** cancellation token to poll *)
  }

  val v :
    ?max_steps:int ->
    ?max_nodes:int ->
    ?timeout:float ->
    ?cancel:Cancel.t ->
    unit ->
    t

  val default : t
  (** 2000 steps / 2000 nodes (the historical chase budget) plus a 10 s
      deadline, so no governed entry point can hang by default. *)

  val unlimited : t
  (** No limits at all — divergence-prone; prefer a deadline. *)

  val steps_nodes : int -> int -> t
  (** [steps_nodes s n] is {!default} with the step/node caps replaced;
      the default deadline stays. *)
end

type t
(** A live, single-use controller: counters plus the resolved absolute
    deadline. *)

val start : ?spent_steps:int -> ?spent_peak_nodes:int -> Budget.t -> t
(** Resolves the budget's relative timeout against {!now_ns}.
    [spent_steps]/[spent_peak_nodes] (default 0) pre-charge the
    controller with work a previous parked run already performed, so a
    resumed chase trips at the same absolute budget as an uninterrupted
    one.  The deadline, by contrast, restarts: wall-clock spent before
    a crash is not owed after it. *)

val default : unit -> t
(** [start Budget.default]. *)

val tick : t -> ?nodes:int -> unit -> bool
(** Account one solver step (and, when given, the current model size)
    and re-check every limit.  [false] means stop: a limit tripped or
    cancellation was requested.  Once a controller has tripped, [tick]
    stays [false].  Owner-domain only: the counting fields are plain
    mutable state; parallel tasks tick their own {!fork}ed child. *)

val ok : t -> bool
(** Re-check only the live conditions — deadline and cancellation —
    without consuming a step and ignoring an earlier step/node trip.
    Used by follow-up phases (e.g. the enumeration fallback after an
    exhausted chase) that have their own step discipline but must still
    honor the shared deadline.  Domain-safe (the trip cell is atomic),
    so one controller's [ok] may be polled from many worker domains. *)

val interrupted : t -> unit -> bool
(** [interrupted t] is [fun () -> not (ok t)], in the polarity
    [Sgraph.Enumerate]'s [?interrupt] hook expects.  Domain-safe, like
    {!ok}: the parallel enumeration hands this closure to every
    worker. *)

val note : t -> string -> unit
(** Attach a diagnostic note (e.g. a clamped sub-budget); notes surface
    in {!exhaustion} and hence in [Verdict.Unknown]. *)

val steps : t -> int
val peak_nodes : t -> int
val elapsed_ns : t -> int64
val tripped : t -> Verdict.reason option
val notes : t -> string list

val remaining_steps : t -> int option
(** Steps left before the step cap trips ([None] when uncapped).  The
    quantity the parallel searches slice into per-task budgets. *)

val fork : t -> ?max_steps:int -> unit -> t
(** A child controller for one parallel task: it shares the parent's
    absolute deadline, node cap and cancellation token, starts with
    zero steps, and carries its own [max_steps] (the task's
    deterministic slice; [None] for uncapped).  Does not mutate the
    parent.  Each child must be ticked by exactly one domain. *)

val absorb : ?trips:bool -> t -> t -> unit
(** [absorb parent child] folds a finished child controller back into
    the parent after the join: steps add, peak nodes max, notes union,
    and (unless [~trips:false]) a child trip escalates the parent's
    trip under the usual never-downgrade ranking.  [~trips:false] is
    for the decisive-verdict case: a worker that raced past its slice
    while another worker found the witness must not shadow the verdict
    with a trip the sequential run would never have recorded.
    Owner-domain only. *)

val trip : t -> Verdict.reason -> unit
(** Record an exhaustion observed outside the controller's own
    accounting — e.g. the parallel typed search proving that the
    sequential scan would have run out of steps.  Never downgrades an
    existing trip.  Domain-safe. *)

val exhaustion : t -> Verdict.exhaustion
(** Diagnostics snapshot; the reason defaults to [Steps] when the
    controller never actually tripped. *)

val escalate :
  ?base_steps:int ->
  ?base_nodes:int ->
  ?factor:int ->
  ?max_rounds:int ->
  ?timeout:float ->
  ?cancel:Cancel.t ->
  (t -> Verdict.t) ->
  Verdict.t
(** Iterative-deepening driver: run [attempt] under budgets growing
    geometrically ([base_steps]/[base_nodes], default 64/64, times
    [factor], default 4, for up to [max_rounds] rounds, default 8 —
    i.e. up to ~1M steps), all rounds sharing one wall-clock deadline
    and cancellation token.  Returns the first decisive verdict; a
    round ending in [Deadline] or [Cancelled] aborts the ladder.  The
    final [Unknown] aggregates steps, peak nodes, elapsed time and the
    number of rounds across the whole ladder. *)
