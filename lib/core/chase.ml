module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module Graph = Sgraph.Graph
module Mg = Sgraph.Merge_graph
module Io = Sgraph.Io
module Check = Sgraph.Check
module Eval = Sgraph.Eval

let src = Logs.Src.create "pathcons.chase" ~doc:"budgeted incremental P_c chase"

module Log = (val Logs.src_log src : Logs.LOG)

let c_steps = Obs.Counter.make ~unit_:"repairs" "chase.steps"
let c_egd = Obs.Counter.make ~unit_:"merges" "chase.egd_merges"
let c_tgd = Obs.Counter.make ~unit_:"paths added" "chase.tgd_firings"

let c_hits = Obs.Counter.make ~unit_:"violations found" "chase.worklist_hits"

let c_skips =
  Obs.Counter.make ~unit_:"clean constraints skipped" "chase.worklist_skips"

let c_settled =
  Obs.Counter.make ~unit_:"dirty checks come back clean" "chase.worklist_settled"

(* instantaneous dirty-constraint count of the running chase *)
let g_worklist = Obs.Gauge.make ~unit_:"constraints" "chase.worklist_depth"

(* Crash sites for the fault-injection harness: [chase.repair] fires at
   the head of every repair (before any mutation, so the in-memory state
   is the last consistent one), [chase.fixpoint] fires when the chase
   detects a fixpoint (before the result is extracted). *)
let fs_repair = Fault.site "chase.repair"
let fs_fixpoint = Fault.site "chase.fixpoint"

type outcome = Fixpoint of Graph.t | Exhausted of Graph.t * Verdict.exhaustion

let conclusion_holds g phi x y =
  match Constr.kind phi with
  | Constr.Forward -> Eval.holds_between g x (Constr.rhs phi) y
  | Constr.Backward -> Eval.holds_between g y (Constr.rhs phi) x

(* ------------------------------------------------------------------ *)
(* Incremental engine                                                  *)
(* ------------------------------------------------------------------ *)

(* The chase state: the union-find graph plus a dirty-constraint
   worklist.

   Invariant: every constraint whose dirty flag is unset holds in the
   current graph.  Repairs only ever add connectivity (TGDs add edges,
   EGD merges splice — they never remove reachability), so a satisfied
   constraint can only become violated again through a path that uses
   the repair's new connectivity: for a TGD, one of the freshly added
   edges (labels of the added path); for an EGD, a path entering or
   leaving the merged class (labels incident to it).  Re-dirtying
   exactly the constraints whose label footprint meets those touched
   labels therefore preserves the invariant; everything else is skipped
   without re-evaluation.  A constraint with an empty footprint has all
   three paths empty and is trivially satisfied forever once checked.

   Fairness: repairs scan the constraint array round-robin from
   [steps mod n] (an array cursor, replacing the historical O(|Sigma|)
   [rotate] list surgery), so a diverging dependency cannot starve the
   others — each full cycle the scan origin advances one slot, exactly
   like the rotation it replaces. *)
type state = {
  mg : Mg.t;
  sigma : Constr.t array;
  by_label : (Label.t, int list) Hashtbl.t;
  dirty : bool array;
  mutable ndirty : int;  (** set bits in [dirty]; mirrored to a gauge *)
  mutable steps : int;  (** successful repairs so far; drives the cursor *)
}

let make_state mg sigma_list =
  let sigma = Array.of_list sigma_list in
  let by_label = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      Label.Set.iter
        (fun k ->
          let l = Option.value ~default:[] (Hashtbl.find_opt by_label k) in
          Hashtbl.replace by_label k (i :: l))
        (Constr.labels_used c))
    sigma;
  let n = Array.length sigma in
  Obs.Gauge.set g_worklist n;
  { mg; sigma; by_label; dirty = Array.make n true; ndirty = n; steps = 0 }

let settle st i =
  if st.dirty.(i) then begin
    st.dirty.(i) <- false;
    st.ndirty <- st.ndirty - 1;
    Obs.Gauge.set g_worklist st.ndirty
  end

let mark_dirty st touched =
  Label.Set.iter
    (fun k ->
      List.iter
        (fun i ->
          if not st.dirty.(i) then begin
            st.dirty.(i) <- true;
            st.ndirty <- st.ndirty + 1
          end)
        (Option.value ~default:[] (Hashtbl.find_opt st.by_label k)))
    touched;
  Obs.Gauge.set g_worklist st.ndirty

(* One repair: scan from the cursor for a dirty constraint that is
   actually violated, fix its first violation in place, and re-dirty
   the constraints its new connectivity can affect.  [`Fixpoint] when
   the scan completes a full cycle without finding any violation. *)
let step st =
  let n = Array.length st.sigma in
  let g = Mg.graph st.mg in
  let rec scan i remaining =
    if remaining = 0 then `Fixpoint
    else if not st.dirty.(i) then begin
      Obs.Counter.incr c_skips;
      scan (if i + 1 = n then 0 else i + 1) (remaining - 1)
    end
    else
      let c = st.sigma.(i) in
      match Check.first_violation g c with
      | None ->
          settle st i;
          Obs.Counter.incr c_settled;
          scan (if i + 1 = n then 0 else i + 1) (remaining - 1)
      | Some (x, y) ->
          Fault.point fs_repair;
          Obs.Counter.incr c_hits;
          let rhs = Constr.rhs c in
          let touched =
            match (Constr.kind c, Path.is_empty rhs) with
            | Constr.Forward, true ->
                Log.debug (fun m ->
                    m "EGD repair for %a: merge %d and %d" Constr.pp c x y);
                Obs.Counter.incr c_egd;
                ignore (Mg.union st.mg x y);
                Mg.incident_labels st.mg x
            | Constr.Backward, true ->
                Log.debug (fun m ->
                    m "EGD repair for %a: merge %d and %d" Constr.pp c y x);
                Obs.Counter.incr c_egd;
                ignore (Mg.union st.mg y x);
                Mg.incident_labels st.mg x
            | Constr.Forward, false ->
                Log.debug (fun m ->
                    m "TGD repair for %a: add %a-path %d ~> %d" Constr.pp c
                      Path.pp rhs x y);
                Obs.Counter.incr c_tgd;
                Mg.add_path st.mg x rhs y;
                Path.labels_used rhs
            | Constr.Backward, false ->
                Log.debug (fun m ->
                    m "TGD repair for %a: add %a-path %d ~> %d" Constr.pp c
                      Path.pp rhs y x);
                Obs.Counter.incr c_tgd;
                Mg.add_path st.mg y rhs x;
                Path.labels_used rhs
          in
          mark_dirty st touched;
          Obs.Counter.incr c_steps;
          st.steps <- st.steps + 1;
          `Repaired
  in
  if n = 0 then `Fixpoint else scan (st.steps mod n) n

(* ------------------------------------------------------------------ *)
(* Snapshots: versioned, checksummed park/resume state                 *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  let fs_write = Fault.site "snapshot.write"
  let fs_read = Fault.site "snapshot.read"

  (* [engine_steps] is the repair count, which is exactly the engine
     budget spent: each repair consumed one tick, and the tick for a
     repair interrupted by a crash is re-paid by the resumed run — so
     pre-charging the resumed controller with the repair count makes it
     trip at the same absolute budget as an uninterrupted run. *)
  type t = {
    fingerprint : string;
    engine_steps : int;
    engine_peak : int;
    repairs : int;
    dirty : bool array;
    tracked : int list;
    mg : Mg.t;
  }

  let magic = "pathcons-chase-snapshot"
  let version = 1

  let engine_steps t = t.engine_steps
  let engine_peak_nodes t = t.engine_peak
  let repairs t = t.repairs
  let live_nodes t = Mg.live_count t.mg

  (* The fingerprint ties a snapshot to the exact problem it was parked
     from.  Constraint ORDER matters (the worklist cursor and dirty
     flags are indexed by position), so this is a digest of the ordered
     constraint dump plus the conjecture (for [implies]) or the initial
     graph (for [run]). *)
  let fingerprint_of ~sigma tail =
    let buf = Buffer.create 256 in
    List.iter
      (fun c ->
        Buffer.add_string buf (Constr.to_string c);
        Buffer.add_char buf '\n')
      sigma;
    Buffer.add_string buf tail;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  let implies_fingerprint ~sigma phi =
    fingerprint_of ~sigma ("|phi " ^ Constr.to_string phi)

  let run_fingerprint ~sigma g =
    fingerprint_of ~sigma ("|graph " ^ Digest.to_hex (Digest.string (Io.to_string g)))

  let matches_implies t ~sigma phi =
    String.equal t.fingerprint (implies_fingerprint ~sigma phi)

  let matches_run t ~sigma g = String.equal t.fingerprint (run_fingerprint ~sigma g)

  let of_state ~fingerprint ~ctl ~tracked st =
    {
      fingerprint;
      engine_steps = st.steps;
      engine_peak = Engine.peak_nodes ctl;
      repairs = st.steps;
      dirty = Array.copy st.dirty;
      tracked;
      mg = st.mg;
    }

  let restore_state s sigma_list =
    let st = make_state s.mg sigma_list in
    if Array.length st.dirty <> Array.length s.dirty then
      invalid_arg "Chase: snapshot constraint count does not match sigma";
    Array.blit s.dirty 0 st.dirty 0 (Array.length s.dirty);
    st.ndirty <- Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 st.dirty;
    Obs.Gauge.set g_worklist st.ndirty;
    st.steps <- s.repairs;
    st

  let to_string t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "fingerprint %s\n" t.fingerprint);
    Buffer.add_string buf (Printf.sprintf "engine-steps %d\n" t.engine_steps);
    Buffer.add_string buf (Printf.sprintf "engine-peak %d\n" t.engine_peak);
    Buffer.add_string buf (Printf.sprintf "repairs %d\n" t.repairs);
    Buffer.add_string buf "dirty ";
    if Array.length t.dirty = 0 then Buffer.add_char buf '-'
    else Array.iter (fun d -> Buffer.add_char buf (if d then '1' else '0')) t.dirty;
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "tracked %d%s\n" (List.length t.tracked)
         (String.concat "" (List.map (fun n -> " " ^ string_of_int n) t.tracked)));
    Buffer.add_string buf (Mg.serialize t.mg);
    let payload = Buffer.contents buf in
    Printf.sprintf "%s %d\nsum %s\n%s" magic version
      (Digest.to_hex (Digest.string payload))
      payload

  let parse_payload payload =
    let ( let* ) = Result.bind in
    let err fmt = Printf.ksprintf Result.error fmt in
    let int_field field l =
      match String.split_on_char ' ' l with
      | [ k; v ] when k = field -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> Ok n
          | _ -> err "bad %s value %S" field v)
      | _ -> err "expected a %S line, got %S" field l
    in
    match String.split_on_char '\n' payload with
    | fp_l :: es_l :: ep_l :: rp_l :: d_l :: tr_l :: mg_lines ->
        let* fingerprint =
          match String.split_on_char ' ' fp_l with
          | [ "fingerprint"; hex ] when hex <> "" -> Ok hex
          | _ -> err "expected a fingerprint line, got %S" fp_l
        in
        let* engine_steps = int_field "engine-steps" es_l in
        let* engine_peak = int_field "engine-peak" ep_l in
        let* repairs = int_field "repairs" rp_l in
        let* dirty =
          match String.split_on_char ' ' d_l with
          | [ "dirty"; "-" ] -> Ok [||]
          | [ "dirty"; bits ] ->
              let ok = ref true in
              let arr =
                Array.init (String.length bits) (fun i ->
                    match bits.[i] with
                    | '1' -> true
                    | '0' -> false
                    | _ ->
                        ok := false;
                        false)
              in
              if !ok then Ok arr else err "bad dirty bitstring %S" bits
          | _ -> err "expected a dirty line, got %S" d_l
        in
        let* tracked =
          match String.split_on_char ' ' tr_l with
          | "tracked" :: k :: ids -> (
              match int_of_string_opt k with
              | Some k when k = List.length ids ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | s :: rest -> (
                        match int_of_string_opt s with
                        | Some n when n >= 0 -> go (n :: acc) rest
                        | _ -> err "bad tracked node id %S" s)
                  in
                  go [] ids
              | _ -> err "tracked count does not match the id list in %S" tr_l)
          | _ -> err "expected a tracked line, got %S" tr_l
        in
        let* mg = Mg.deserialize (String.concat "\n" mg_lines) in
        (match List.find_opt (fun n -> n >= Graph.node_count (Mg.graph mg)) tracked with
        | Some n -> err "tracked node %d is out of range" n
        | None ->
            Ok { fingerprint; engine_steps; engine_peak; repairs; dirty; tracked; mg })
    | _ -> Error "truncated snapshot payload"

  let of_string s =
    let err fmt = Printf.ksprintf Result.error fmt in
    match String.index_opt s '\n' with
    | None -> Error "not a chase snapshot (missing header)"
    | Some i -> (
        let header = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match String.split_on_char ' ' header with
        | [ m; v ] when m = magic -> (
            match int_of_string_opt v with
            | Some v when v = version -> (
                match String.index_opt rest '\n' with
                | None -> Error "truncated snapshot (missing checksum line)"
                | Some j -> (
                    let sum_l = String.sub rest 0 j in
                    let payload = String.sub rest (j + 1) (String.length rest - j - 1) in
                    match String.split_on_char ' ' sum_l with
                    | [ "sum"; hex ] ->
                        if Digest.to_hex (Digest.string payload) <> hex then
                          Error "checksum mismatch (corrupt or truncated snapshot)"
                        else parse_payload payload
                    | _ -> err "malformed checksum line %S" sum_l))
            | Some v -> err "unsupported snapshot version %d (this build reads %d)" v version
            | None -> err "malformed snapshot version %S" v)
        | _ -> Error "not a chase snapshot (bad magic)")

  let save ~path t = Fault.Io.write_atomic ~site:fs_write ~path (to_string t)

  let load path =
    match Fault.Io.read_file ~site:fs_read path with
    | Error _ as e -> e
    | Ok s -> of_string s
end

(* Shared run loop plumbing: park on exhaustion or injected crash, note
   the park in the exhaustion diagnostics, convert a crash into
   [Unknown {reason = Crashed}] rather than an escaping exception. *)
let parked_note = "chase state parked (resumable snapshot)"

(* Audit-journal records for snapshot discipline: one "chase.park" per
   parked snapshot (why = "budget" | "crash") and one "chase.resume"
   per restore, each carrying the per-site fault-injection counters so
   a post-mortem can see which injected fault cut the run short. *)
let audit_fault_fields () =
  match
    List.filter
      (fun (_, hits, injected) -> hits > 0 || injected > 0)
      (Fault.site_counters ())
  with
  | [] -> []
  | cs ->
      [
        ( "fault",
          Obs.Json.Obj
            (List.map
               (fun (n, hits, injected) ->
                 ( n,
                   Obs.Json.Obj
                     [
                       ("hits", Obs.Json.Int hits);
                       ("injected", Obs.Json.Int injected);
                     ] ))
               cs) );
      ]

let audit_park ~ctl ~why st =
  if Obs.Audit.enabled () then
    Obs.Audit.emit "chase.park"
      ~fields:
        ([
           ("why", Obs.Json.String why);
           ("repairs", Obs.Json.Int st.steps);
           ("live_nodes", Obs.Json.Int (Mg.live_count st.mg));
           ("steps", Obs.Json.Int (Engine.steps ctl));
           ("peak_nodes", Obs.Json.Int (Engine.peak_nodes ctl));
         ]
        @ audit_fault_fields ())

let audit_resume (s : Snapshot.t) =
  if Obs.Audit.enabled () then
    Obs.Audit.emit "chase.resume"
      ~fields:
        ([
           ("repairs", Obs.Json.Int (Snapshot.repairs s));
           ("engine_steps", Obs.Json.Int (Snapshot.engine_steps s));
         ]
        @ audit_fault_fields ())

let run ?ctl ?(tracked = []) ?park ?resume g sigma =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let fingerprint = Snapshot.run_fingerprint ~sigma g in
  let st, tracked =
    match resume with
    | Some (s : Snapshot.t) ->
        if s.Snapshot.fingerprint <> fingerprint then
          invalid_arg "Chase.run: snapshot does not match this graph and sigma";
        audit_resume s;
        (Snapshot.restore_state s sigma, s.Snapshot.tracked)
    | None -> (make_state (Mg.of_graph (Graph.copy g)) sigma, tracked)
  in
  let park_now ~why () =
    match park with
    | None -> ()
    | Some f ->
        Engine.note ctl parked_note;
        audit_park ~ctl ~why st;
        f (Snapshot.of_state ~fingerprint ~ctl ~tracked st)
  in
  let finish outcome =
    let h, rename = Mg.compact st.mg in
    (outcome h, List.map rename tracked)
  in
  let rec go () =
    if not (Engine.tick ctl ~nodes:(Mg.live_count st.mg) ()) then begin
      park_now ~why:"budget" ();
      finish (fun h -> Exhausted (h, Engine.exhaustion ctl))
    end
    else
      match step st with
      | `Fixpoint ->
          Fault.point fs_fixpoint;
          finish (fun h -> Fixpoint h)
      | `Repaired -> go ()
  in
  Obs.Span.with_ "chase.run"
    ~args:[ ("sigma", string_of_int (List.length sigma)) ]
    (fun () ->
      match go () with
      | r -> r
      | exception Fault.Crash site ->
          Engine.note ctl (Printf.sprintf "injected crash at fault site %s" site);
          park_now ~why:"crash" ();
          finish (fun h ->
              Exhausted
                (h, { (Engine.exhaustion ctl) with Verdict.reason = Verdict.Crashed })))

let implies ?ctl ?park ?resume ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let fingerprint = Snapshot.implies_fingerprint ~sigma phi in
  let st, x, y =
    match resume with
    | Some (s : Snapshot.t) -> (
        if s.Snapshot.fingerprint <> fingerprint then
          invalid_arg "Chase.implies: snapshot does not match sigma and phi";
        match s.Snapshot.tracked with
        | [ x; y ] ->
            audit_resume s;
            (Snapshot.restore_state s sigma, x, y)
        | _ -> invalid_arg "Chase.implies: snapshot was not parked by implies")
    | None ->
        (* Canonical database of phi's premise. *)
        let g = Graph.create () in
        let x = Graph.ensure_path g (Graph.root g) (Constr.prefix phi) in
        let y = Graph.ensure_path g x (Constr.lhs phi) in
        (make_state (Mg.of_graph g) sigma, x, y)
  in
  let park_now ~why () =
    match park with
    | None -> ()
    | Some f ->
        Engine.note ctl parked_note;
        audit_park ~ctl ~why st;
        f (Snapshot.of_state ~fingerprint ~ctl ~tracked:[ x; y ] st)
  in
  let rec go () =
    if
      conclusion_holds (Mg.graph st.mg) phi (Mg.find st.mg x) (Mg.find st.mg y)
    then Verdict.Implied
    else if not (Engine.tick ctl ~nodes:(Mg.live_count st.mg) ()) then begin
      park_now ~why:"budget" ();
      Verdict.Unknown (Engine.exhaustion ctl)
    end
    else
      match step st with
      | `Fixpoint ->
          Fault.point fs_fixpoint;
          Verdict.Refuted (fst (Mg.compact st.mg))
      | `Repaired -> go ()
  in
  Obs.Span.with_ "chase.implies"
    ~args:[ ("sigma", string_of_int (List.length sigma)) ]
    (fun () ->
      match go () with
      | v -> v
      | exception Fault.Crash site ->
          Engine.note ctl (Printf.sprintf "injected crash at fault site %s" site);
          park_now ~why:"crash" ();
          Verdict.Unknown
            { (Engine.exhaustion ctl) with Verdict.reason = Verdict.Crashed })

(* ------------------------------------------------------------------ *)
(* Reference engine                                                    *)
(* ------------------------------------------------------------------ *)

(* The historical copy-per-step chase, retained verbatim as the
   differential-testing oracle (see test/test_chase_incremental.ml):
   every repair rebuilds the graph with renumbered ids, every step
   rescans all of Sigma.  Both engines pick repairs with
   [Check.first_violation], and the incremental [union] absorbs into
   the smaller id exactly like [merge] does here, so a run of either
   engine performs the same repair sequence and their results are
   isomorphic via the order-preserving renaming. *)

let merge g a b =
  if a = b then (Graph.copy g, fun n -> n)
  else begin
    (* Keep the root: merge into the smaller id (so 0 absorbs). *)
    let target = min a b and victim = max a b in
    let rename n =
      let n = if n = victim then target else n in
      if n > victim then n - 1 else n
    in
    let h = Graph.create () in
    for _ = 2 to Graph.node_count g - 1 do
      ignore (Graph.add_node h)
    done;
    Graph.iter_edges g (fun x k y -> Graph.add_edge h (rename x) k (rename y));
    (h, rename)
  end

(* One repair for the first violation found; [None] when G |= Sigma. *)
let repair_reference g sigma =
  let rec find = function
    | [] -> None
    | c :: rest -> (
        match Check.first_violation g c with
        | None -> find rest
        | Some (x, y) -> Some (c, x, y))
  in
  match find sigma with
  | None -> None
  | Some (c, x, y) ->
      let rhs = Constr.rhs c in
      let merged_or_added =
        match (Constr.kind c, Path.is_empty rhs) with
        | Constr.Forward, true -> `Merge (x, y)
        | Constr.Backward, true -> `Merge (y, x)
        | Constr.Forward, false -> `Add (x, rhs, y)
        | Constr.Backward, false -> `Add (y, rhs, x)
      in
      Some
        (match merged_or_added with
        | `Merge (a, b) ->
            let g', rename = merge g a b in
            (g', rename)
        | `Add (node_src, rho, dst) ->
            let g' = Graph.copy g in
            Graph.add_path g' node_src rho dst;
            (g', fun n -> n))

(* Fairness: rotate the constraint list as steps accumulate so a diverging
   dependency cannot starve the others. *)
let rotate sigma steps =
  match sigma with
  | [] -> []
  | _ ->
      let n = List.length sigma in
      let k = steps mod n in
      let rec split i acc = function
        | rest when i = k -> rest @ List.rev acc
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> List.rev acc
      in
      split 0 [] sigma

let run_reference ?ctl ?(tracked = []) g sigma =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let rec go steps g tracked =
    if not (Engine.tick ctl ~nodes:(Graph.node_count g) ()) then
      (Exhausted (g, Engine.exhaustion ctl), tracked)
    else
      match repair_reference g (rotate sigma steps) with
      | None -> (Fixpoint g, tracked)
      | Some (g', rename) -> go (steps + 1) g' (List.map rename tracked)
  in
  go 0 (Graph.copy g) tracked

let implies_reference ?ctl ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let g = Graph.create () in
  let x = Graph.ensure_path g (Graph.root g) (Constr.prefix phi) in
  let y = Graph.ensure_path g x (Constr.lhs phi) in
  let rec go steps g x y =
    if conclusion_holds g phi x y then Verdict.Implied
    else if not (Engine.tick ctl ~nodes:(Graph.node_count g) ()) then
      Verdict.Unknown (Engine.exhaustion ctl)
    else
      match repair_reference g (rotate sigma steps) with
      | None -> Verdict.Refuted g
      | Some (g', rename) -> go (steps + 1) g' (rename x) (rename y)
  in
  go 0 g x y
