module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Graph = Sgraph.Graph
module Check = Sgraph.Check
module Eval = Sgraph.Eval

let src = Logs.Src.create "pathcons.chase" ~doc:"budgeted P_c chase"

module Log = (val Logs.src_log src : Logs.LOG)

let c_steps = Obs.Counter.make ~unit_:"repairs" "chase.steps"
let c_egd = Obs.Counter.make ~unit_:"merges" "chase.egd_merges"
let c_tgd = Obs.Counter.make ~unit_:"paths added" "chase.tgd_firings"

type outcome = Fixpoint of Graph.t | Exhausted of Graph.t * Verdict.exhaustion

let merge g a b =
  if a = b then (Graph.copy g, fun n -> n)
  else begin
    (* Keep the root: merge into the smaller id (so 0 absorbs). *)
    let target = min a b and victim = max a b in
    let rename n =
      let n = if n = victim then target else n in
      if n > victim then n - 1 else n
    in
    let h = Graph.create () in
    for _ = 2 to Graph.node_count g - 1 do
      ignore (Graph.add_node h)
    done;
    List.iter (fun (x, k, y) -> Graph.add_edge h (rename x) k (rename y)) (Graph.edges g);
    (h, rename)
  end

(* One repair for the first violation found; [None] when G |= Sigma. *)
let repair g sigma =
  let rec find = function
    | [] -> None
    | c :: rest -> (
        match Check.violations g c with
        | [] -> find rest
        | (x, y) :: _ -> Some (c, x, y))
  in
  match find sigma with
  | None -> None
  | Some (c, x, y) ->
      let rhs = Constr.rhs c in
      let merged_or_added =
        match (Constr.kind c, Path.is_empty rhs) with
        | Constr.Forward, true -> `Merge (x, y)
        | Constr.Backward, true -> `Merge (y, x)
        | Constr.Forward, false -> `Add (x, rhs, y)
        | Constr.Backward, false -> `Add (y, rhs, x)
      in
      Some
        (match merged_or_added with
        | `Merge (a, b) ->
            Log.debug (fun m ->
                m "EGD repair for %a: merge %d and %d" Constr.pp c a b);
            Obs.Counter.incr c_egd;
            let g', rename = merge g a b in
            (g', rename)
        | `Add (node_src, rho, dst) ->
            Log.debug (fun m ->
                m "TGD repair for %a: add %a-path %d ~> %d" Constr.pp c Path.pp
                  rho node_src dst);
            Obs.Counter.incr c_tgd;
            let g' = Graph.copy g in
            Graph.add_path g' node_src rho dst;
            (g', fun n -> n))

(* Fairness: rotate the constraint list as steps accumulate so a diverging
   dependency cannot starve the others. *)
let rotate sigma steps =
  match sigma with
  | [] -> []
  | _ ->
      let n = List.length sigma in
      let k = steps mod n in
      let rec split i acc = function
        | rest when i = k -> rest @ List.rev acc
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> List.rev acc
      in
      split 0 [] sigma

let run ?ctl ?(tracked = []) g sigma =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let rec go steps g tracked =
    if not (Engine.tick ctl ~nodes:(Graph.node_count g) ()) then
      (Exhausted (g, Engine.exhaustion ctl), tracked)
    else
      match repair g (rotate sigma steps) with
      | None -> (Fixpoint g, tracked)
      | Some (g', rename) ->
          Obs.Counter.incr c_steps;
          go (steps + 1) g' (List.map rename tracked)
  in
  Obs.Span.with_ "chase.run"
    ~args:[ ("sigma", string_of_int (List.length sigma)) ]
    (fun () -> go 0 (Graph.copy g) tracked)

let conclusion_holds g phi x y =
  match Constr.kind phi with
  | Constr.Forward -> Eval.holds_between g x (Constr.rhs phi) y
  | Constr.Backward -> Eval.holds_between g y (Constr.rhs phi) x

let implies ?ctl ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  (* Canonical database of phi's premise. *)
  let g = Graph.create () in
  let x = Graph.ensure_path g (Graph.root g) (Constr.prefix phi) in
  let y = Graph.ensure_path g x (Constr.lhs phi) in
  let rec go steps g x y =
    if conclusion_holds g phi x y then Verdict.Implied
    else if not (Engine.tick ctl ~nodes:(Graph.node_count g) ()) then
      Verdict.Unknown (Engine.exhaustion ctl)
    else
      match repair g (rotate sigma steps) with
      | None -> Verdict.Refuted g
      | Some (g', rename) ->
          Obs.Counter.incr c_steps;
          go (steps + 1) g' (rename x) (rename y)
  in
  Obs.Span.with_ "chase.implies"
    ~args:[ ("sigma", string_of_int (List.length sigma)) ]
    (fun () -> go 0 g x y)
