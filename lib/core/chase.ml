module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module Graph = Sgraph.Graph
module Mg = Sgraph.Merge_graph
module Check = Sgraph.Check
module Eval = Sgraph.Eval

let src = Logs.Src.create "pathcons.chase" ~doc:"budgeted incremental P_c chase"

module Log = (val Logs.src_log src : Logs.LOG)

let c_steps = Obs.Counter.make ~unit_:"repairs" "chase.steps"
let c_egd = Obs.Counter.make ~unit_:"merges" "chase.egd_merges"
let c_tgd = Obs.Counter.make ~unit_:"paths added" "chase.tgd_firings"

let c_hits = Obs.Counter.make ~unit_:"violations found" "chase.worklist_hits"

let c_skips =
  Obs.Counter.make ~unit_:"clean constraints skipped" "chase.worklist_skips"

let c_settled =
  Obs.Counter.make ~unit_:"dirty checks come back clean" "chase.worklist_settled"

type outcome = Fixpoint of Graph.t | Exhausted of Graph.t * Verdict.exhaustion

let conclusion_holds g phi x y =
  match Constr.kind phi with
  | Constr.Forward -> Eval.holds_between g x (Constr.rhs phi) y
  | Constr.Backward -> Eval.holds_between g y (Constr.rhs phi) x

(* ------------------------------------------------------------------ *)
(* Incremental engine                                                  *)
(* ------------------------------------------------------------------ *)

(* The chase state: the union-find graph plus a dirty-constraint
   worklist.

   Invariant: every constraint whose dirty flag is unset holds in the
   current graph.  Repairs only ever add connectivity (TGDs add edges,
   EGD merges splice — they never remove reachability), so a satisfied
   constraint can only become violated again through a path that uses
   the repair's new connectivity: for a TGD, one of the freshly added
   edges (labels of the added path); for an EGD, a path entering or
   leaving the merged class (labels incident to it).  Re-dirtying
   exactly the constraints whose label footprint meets those touched
   labels therefore preserves the invariant; everything else is skipped
   without re-evaluation.  A constraint with an empty footprint has all
   three paths empty and is trivially satisfied forever once checked.

   Fairness: repairs scan the constraint array round-robin from
   [steps mod n] (an array cursor, replacing the historical O(|Sigma|)
   [rotate] list surgery), so a diverging dependency cannot starve the
   others — each full cycle the scan origin advances one slot, exactly
   like the rotation it replaces. *)
type state = {
  mg : Mg.t;
  sigma : Constr.t array;
  by_label : (Label.t, int list) Hashtbl.t;
  dirty : bool array;
  mutable steps : int;  (** successful repairs so far; drives the cursor *)
}

let make_state mg sigma_list =
  let sigma = Array.of_list sigma_list in
  let by_label = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      Label.Set.iter
        (fun k ->
          let l = Option.value ~default:[] (Hashtbl.find_opt by_label k) in
          Hashtbl.replace by_label k (i :: l))
        (Constr.labels_used c))
    sigma;
  { mg; sigma; by_label; dirty = Array.make (Array.length sigma) true; steps = 0 }

let mark_dirty st touched =
  Label.Set.iter
    (fun k ->
      List.iter
        (fun i -> st.dirty.(i) <- true)
        (Option.value ~default:[] (Hashtbl.find_opt st.by_label k)))
    touched

(* One repair: scan from the cursor for a dirty constraint that is
   actually violated, fix its first violation in place, and re-dirty
   the constraints its new connectivity can affect.  [`Fixpoint] when
   the scan completes a full cycle without finding any violation. *)
let step st =
  let n = Array.length st.sigma in
  let g = Mg.graph st.mg in
  let rec scan i remaining =
    if remaining = 0 then `Fixpoint
    else if not st.dirty.(i) then begin
      Obs.Counter.incr c_skips;
      scan (if i + 1 = n then 0 else i + 1) (remaining - 1)
    end
    else
      let c = st.sigma.(i) in
      match Check.first_violation g c with
      | None ->
          st.dirty.(i) <- false;
          Obs.Counter.incr c_settled;
          scan (if i + 1 = n then 0 else i + 1) (remaining - 1)
      | Some (x, y) ->
          Obs.Counter.incr c_hits;
          let rhs = Constr.rhs c in
          let touched =
            match (Constr.kind c, Path.is_empty rhs) with
            | Constr.Forward, true ->
                Log.debug (fun m ->
                    m "EGD repair for %a: merge %d and %d" Constr.pp c x y);
                Obs.Counter.incr c_egd;
                ignore (Mg.union st.mg x y);
                Mg.incident_labels st.mg x
            | Constr.Backward, true ->
                Log.debug (fun m ->
                    m "EGD repair for %a: merge %d and %d" Constr.pp c y x);
                Obs.Counter.incr c_egd;
                ignore (Mg.union st.mg y x);
                Mg.incident_labels st.mg x
            | Constr.Forward, false ->
                Log.debug (fun m ->
                    m "TGD repair for %a: add %a-path %d ~> %d" Constr.pp c
                      Path.pp rhs x y);
                Obs.Counter.incr c_tgd;
                Mg.add_path st.mg x rhs y;
                Path.labels_used rhs
            | Constr.Backward, false ->
                Log.debug (fun m ->
                    m "TGD repair for %a: add %a-path %d ~> %d" Constr.pp c
                      Path.pp rhs y x);
                Obs.Counter.incr c_tgd;
                Mg.add_path st.mg y rhs x;
                Path.labels_used rhs
          in
          mark_dirty st touched;
          Obs.Counter.incr c_steps;
          st.steps <- st.steps + 1;
          `Repaired
  in
  if n = 0 then `Fixpoint else scan (st.steps mod n) n

let run ?ctl ?(tracked = []) g sigma =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let st = make_state (Mg.of_graph (Graph.copy g)) sigma in
  let finish outcome =
    let h, rename = Mg.compact st.mg in
    (outcome h, List.map rename tracked)
  in
  let rec go () =
    if not (Engine.tick ctl ~nodes:(Mg.live_count st.mg) ()) then
      finish (fun h -> Exhausted (h, Engine.exhaustion ctl))
    else
      match step st with
      | `Fixpoint -> finish (fun h -> Fixpoint h)
      | `Repaired -> go ()
  in
  Obs.Span.with_ "chase.run"
    ~args:[ ("sigma", string_of_int (List.length sigma)) ]
    (fun () -> go ())

let implies ?ctl ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  (* Canonical database of phi's premise. *)
  let g = Graph.create () in
  let x = Graph.ensure_path g (Graph.root g) (Constr.prefix phi) in
  let y = Graph.ensure_path g x (Constr.lhs phi) in
  let st = make_state (Mg.of_graph g) sigma in
  let rec go () =
    if
      conclusion_holds (Mg.graph st.mg) phi (Mg.find st.mg x) (Mg.find st.mg y)
    then Verdict.Implied
    else if not (Engine.tick ctl ~nodes:(Mg.live_count st.mg) ()) then
      Verdict.Unknown (Engine.exhaustion ctl)
    else
      match step st with
      | `Fixpoint -> Verdict.Refuted (fst (Mg.compact st.mg))
      | `Repaired -> go ()
  in
  Obs.Span.with_ "chase.implies"
    ~args:[ ("sigma", string_of_int (List.length sigma)) ]
    (fun () -> go ())

(* ------------------------------------------------------------------ *)
(* Reference engine                                                    *)
(* ------------------------------------------------------------------ *)

(* The historical copy-per-step chase, retained verbatim as the
   differential-testing oracle (see test/test_chase_incremental.ml):
   every repair rebuilds the graph with renumbered ids, every step
   rescans all of Sigma.  Both engines pick repairs with
   [Check.first_violation], and the incremental [union] absorbs into
   the smaller id exactly like [merge] does here, so a run of either
   engine performs the same repair sequence and their results are
   isomorphic via the order-preserving renaming. *)

let merge g a b =
  if a = b then (Graph.copy g, fun n -> n)
  else begin
    (* Keep the root: merge into the smaller id (so 0 absorbs). *)
    let target = min a b and victim = max a b in
    let rename n =
      let n = if n = victim then target else n in
      if n > victim then n - 1 else n
    in
    let h = Graph.create () in
    for _ = 2 to Graph.node_count g - 1 do
      ignore (Graph.add_node h)
    done;
    Graph.iter_edges g (fun x k y -> Graph.add_edge h (rename x) k (rename y));
    (h, rename)
  end

(* One repair for the first violation found; [None] when G |= Sigma. *)
let repair_reference g sigma =
  let rec find = function
    | [] -> None
    | c :: rest -> (
        match Check.first_violation g c with
        | None -> find rest
        | Some (x, y) -> Some (c, x, y))
  in
  match find sigma with
  | None -> None
  | Some (c, x, y) ->
      let rhs = Constr.rhs c in
      let merged_or_added =
        match (Constr.kind c, Path.is_empty rhs) with
        | Constr.Forward, true -> `Merge (x, y)
        | Constr.Backward, true -> `Merge (y, x)
        | Constr.Forward, false -> `Add (x, rhs, y)
        | Constr.Backward, false -> `Add (y, rhs, x)
      in
      Some
        (match merged_or_added with
        | `Merge (a, b) ->
            let g', rename = merge g a b in
            (g', rename)
        | `Add (node_src, rho, dst) ->
            let g' = Graph.copy g in
            Graph.add_path g' node_src rho dst;
            (g', fun n -> n))

(* Fairness: rotate the constraint list as steps accumulate so a diverging
   dependency cannot starve the others. *)
let rotate sigma steps =
  match sigma with
  | [] -> []
  | _ ->
      let n = List.length sigma in
      let k = steps mod n in
      let rec split i acc = function
        | rest when i = k -> rest @ List.rev acc
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> List.rev acc
      in
      split 0 [] sigma

let run_reference ?ctl ?(tracked = []) g sigma =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let rec go steps g tracked =
    if not (Engine.tick ctl ~nodes:(Graph.node_count g) ()) then
      (Exhausted (g, Engine.exhaustion ctl), tracked)
    else
      match repair_reference g (rotate sigma steps) with
      | None -> (Fixpoint g, tracked)
      | Some (g', rename) -> go (steps + 1) g' (List.map rename tracked)
  in
  go 0 (Graph.copy g) tracked

let implies_reference ?ctl ~sigma phi =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  let g = Graph.create () in
  let x = Graph.ensure_path g (Graph.root g) (Constr.prefix phi) in
  let y = Graph.ensure_path g x (Constr.lhs phi) in
  let rec go steps g x y =
    if conclusion_holds g phi x y then Verdict.Implied
    else if not (Engine.tick ctl ~nodes:(Graph.node_count g) ()) then
      Verdict.Unknown (Engine.exhaustion ctl)
    else
      match repair_reference g (rotate sigma steps) with
      | None -> Verdict.Refuted g
      | Some (g', rename) -> go (steps + 1) g' (rename x) (rename y)
  in
  go 0 g x y
