type reason = Steps | Nodes | Deadline | Cancelled | Crashed

type exhaustion = {
  reason : reason;
  steps : int;
  nodes : int;
  elapsed_ns : int64;
  rounds : int;
  notes : string list;
  counters : (string * int) list;
}

type t = Implied | Refuted of Sgraph.Graph.t | Unknown of exhaustion

let is_implied = function Implied -> true | Refuted _ | Unknown _ -> false
let is_refuted = function Refuted _ -> true | Implied | Unknown _ -> false
let is_unknown = function Unknown _ -> true | Implied | Refuted _ -> false

let unknown_reason = function
  | Unknown e -> Some e.reason
  | Implied | Refuted _ -> None

let elapsed_s e = Int64.to_float e.elapsed_ns /. 1e9

let reason_keyword = function
  | Steps -> "steps"
  | Nodes -> "nodes"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Crashed -> "crashed"

let pp_reason ppf = function
  | Steps -> Format.pp_print_string ppf "step budget exhausted"
  | Nodes -> Format.pp_print_string ppf "node budget exhausted"
  | Deadline -> Format.pp_print_string ppf "deadline reached"
  | Cancelled -> Format.pp_print_string ppf "cancelled"
  | Crashed -> Format.pp_print_string ppf "crashed (state parked, resumable)"

let pp_exhaustion ppf e =
  Format.fprintf ppf "%a after %d steps, %d nodes, %.3f s, %d round%s"
    pp_reason e.reason e.steps e.nodes (elapsed_s e) e.rounds
    (if e.rounds = 1 then "" else "s");
  List.iter (fun n -> Format.fprintf ppf "; %s" n) e.notes;
  match e.counters with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "; spent on: %s"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs))

let pp ppf = function
  | Implied -> Format.pp_print_string ppf "implied"
  | Refuted g ->
      Format.fprintf ppf "refuted (countermodel with %d nodes)"
        (Sgraph.Graph.node_count g)
  | Unknown e -> Format.fprintf ppf "unknown (%a)" pp_exhaustion e
