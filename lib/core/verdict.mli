(** Outcomes of budgeted (semi-)decision procedures.

    The implication problems for P_c and for P_w(K) on semistructured
    data are undecidable (Theorems 4.1/4.3), so procedures for them
    cannot always answer; both positive and negative answers carry
    checkable evidence, and a non-answer carries a structured
    explanation of which resource ran out. *)

type reason =
  | Steps  (** the step budget of the governing {!Engine} ran out *)
  | Nodes  (** the constructed model outgrew the node budget *)
  | Deadline  (** the wall-clock deadline passed *)
  | Cancelled  (** cooperative cancellation (e.g. SIGINT/SIGTERM) was requested *)
  | Crashed
      (** the run was cut short by a (possibly injected) crash after
          parking a resumable snapshot; see [Chase.Snapshot] *)

type exhaustion = {
  reason : reason;  (** why the search gave up *)
  steps : int;  (** total steps consumed (across escalation rounds) *)
  nodes : int;  (** peak model size reached *)
  elapsed_ns : int64;  (** wall-clock time spent, monotonic nanoseconds *)
  rounds : int;  (** escalation rounds attempted; 1 for a single shot *)
  notes : string list;
      (** extra diagnostics, e.g. silently clamped sub-budgets *)
  counters : (string * int) list;
      (** snapshot of the non-zero {!Obs.Counter}s at exhaustion time
          (chase steps, EGD/TGD firings, enumeration nodes, …), so an
          exhausted run says what the budget was spent doing.  Empty
          when the observability layer is disabled. *)
}

type t =
  | Implied
      (** Established by sound derivation steps (chase): every (finite
          or infinite) model of Sigma satisfies phi. *)
  | Refuted of Sgraph.Graph.t
      (** A finite model of Sigma /\ not phi: Sigma does not (finitely)
          imply phi.  The witness can be re-checked with
          [Sgraph.Check]. *)
  | Unknown of exhaustion  (** Budget exhausted; see {!exhaustion}. *)

val is_implied : t -> bool
val is_refuted : t -> bool
val is_unknown : t -> bool

val unknown_reason : t -> reason option
(** [Some r] iff the verdict is [Unknown] with reason [r]. *)

val elapsed_s : exhaustion -> float
(** Elapsed wall-clock time in seconds. *)

val reason_keyword : reason -> string
(** Stable one-word form (["steps"], ["nodes"], ["deadline"],
    ["cancelled"], ["crashed"]) for machine-readable surfaces — the
    audit journal and diagnostics JSON. *)

val pp_reason : Format.formatter -> reason -> unit
val pp_exhaustion : Format.formatter -> exhaustion -> unit
val pp : Format.formatter -> t -> unit
