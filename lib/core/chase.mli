(** A budgeted chase for P_c constraints, governed by {!Engine}.

    Every P_c constraint is a tuple/equality-generating dependency over
    the binary signature: a forward constraint
    [forall x (alpha(r,x) -> forall y (beta(x,y) -> gamma(x,y)))]
    with [gamma <> eps] asks for a [gamma]-path from [x] to [y] (a TGD:
    repair by adding a fresh path), and with [gamma = eps] asks for
    [x = y] (an EGD: repair by merging nodes); backward constraints are
    symmetric.  Chasing the canonical database of [phi]'s premise with
    [Sigma] therefore semi-decides [Sigma |= phi]:
    - if the conclusion becomes true at any finite stage, [phi] is
      implied (each chase step is a logical consequence of [Sigma]);
    - if the chase reaches a fixpoint with the conclusion still false,
      the result is a finite model of [Sigma /\ not phi];
    - otherwise the governing engine trips ([Unknown] with structured
      exhaustion diagnostics) — unavoidable, since the problem is
      undecidable (Theorem 4.1).

    Every entry point takes a fresh [?ctl] controller (default:
    [Engine.default ()], i.e. 2000 steps / 2000 nodes / 10 s); one chase
    step consumes one engine step and reports the current node count.

    The default engine is {e incremental}: the chased graph lives in a
    {!Sgraph.Merge_graph} (union-find node identity, so EGD repairs are
    adjacency splices instead of whole-graph rebuilds) and violation
    detection runs off a dirty-constraint worklist indexed by label
    footprint, so each repair re-checks only the constraints its new
    connectivity can affect.  {!run_reference}/{!implies_reference}
    retain the historical copy-per-step engine as a differential-testing
    oracle; both engines perform the same repair sequence, so their
    results agree up to the order-preserving renaming (see DESIGN.md
    section 10). *)

type outcome =
  | Fixpoint of Sgraph.Graph.t  (** all constraints hold *)
  | Exhausted of Sgraph.Graph.t * Verdict.exhaustion
      (** the engine tripped; the partial chase result is returned
          together with the diagnostics *)

val run :
  ?ctl:Engine.t ->
  ?tracked:Sgraph.Graph.node list ->
  Sgraph.Graph.t ->
  Pathlang.Constr.t list ->
  outcome * Sgraph.Graph.node list
(** Chases a copy of the graph.  [tracked] nodes are followed through
    merges and returned re-addressed. *)

val implies :
  ?ctl:Engine.t ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  Verdict.t

val merge : Sgraph.Graph.t -> Sgraph.Graph.node -> Sgraph.Graph.node
  -> Sgraph.Graph.t * (Sgraph.Graph.node -> Sgraph.Graph.node)
(** [merge g a b] identifies the two nodes (the root stays the root) and
    returns the contracted graph with the renaming.  Exposed for the
    typed-countermodel builders and tests. *)

val run_reference :
  ?ctl:Engine.t ->
  ?tracked:Sgraph.Graph.node list ->
  Sgraph.Graph.t ->
  Pathlang.Constr.t list ->
  outcome * Sgraph.Graph.node list
(** {!run} on the retained copy-per-step engine: every EGD rebuilds and
    renumbers the graph, every step rescans all of Sigma.  Kept as the
    differential-testing oracle for the incremental engine; performs
    the same repair sequence as {!run}. *)

val implies_reference :
  ?ctl:Engine.t ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  Verdict.t
(** {!implies} on the reference engine. *)
