(** A budgeted chase for P_c constraints, governed by {!Engine}.

    Every P_c constraint is a tuple/equality-generating dependency over
    the binary signature: a forward constraint
    [forall x (alpha(r,x) -> forall y (beta(x,y) -> gamma(x,y)))]
    with [gamma <> eps] asks for a [gamma]-path from [x] to [y] (a TGD:
    repair by adding a fresh path), and with [gamma = eps] asks for
    [x = y] (an EGD: repair by merging nodes); backward constraints are
    symmetric.  Chasing the canonical database of [phi]'s premise with
    [Sigma] therefore semi-decides [Sigma |= phi]:
    - if the conclusion becomes true at any finite stage, [phi] is
      implied (each chase step is a logical consequence of [Sigma]);
    - if the chase reaches a fixpoint with the conclusion still false,
      the result is a finite model of [Sigma /\ not phi];
    - otherwise the governing engine trips ([Unknown] with structured
      exhaustion diagnostics) — unavoidable, since the problem is
      undecidable (Theorem 4.1).

    Every entry point takes a fresh [?ctl] controller (default:
    [Engine.default ()], i.e. 2000 steps / 2000 nodes / 10 s); one chase
    step consumes one engine step and reports the current node count.

    The default engine is {e incremental}: the chased graph lives in a
    {!Sgraph.Merge_graph} (union-find node identity, so EGD repairs are
    adjacency splices instead of whole-graph rebuilds) and violation
    detection runs off a dirty-constraint worklist indexed by label
    footprint, so each repair re-checks only the constraints its new
    connectivity can affect.  {!run_reference}/{!implies_reference}
    retain the historical copy-per-step engine as a differential-testing
    oracle; both engines perform the same repair sequence, so their
    results agree up to the order-preserving renaming (see DESIGN.md
    section 10). *)

type outcome =
  | Fixpoint of Sgraph.Graph.t  (** all constraints hold *)
  | Exhausted of Sgraph.Graph.t * Verdict.exhaustion
      (** the engine tripped; the partial chase result is returned
          together with the diagnostics *)

(** Parked chase state: everything a later process needs to continue a
    chase exactly where this one stopped — the {!Sgraph.Merge_graph}
    (union-find parents, adjacency, dead nodes included so fresh-node
    allocation replays identically), the dirty-constraint worklist and
    its cursor, the tracked nodes, and the engine budget spent so far.
    A fingerprint of the originating problem (ordered sigma plus the
    conjecture or initial graph) guards against resuming under the
    wrong constraints.

    The on-disk form is versioned and checksummed; {!of_string} and
    {!load} report truncation, corruption, or a version mismatch as
    [Error] — callers degrade to a cold start, they never crash. *)
module Snapshot : sig
  type t

  val engine_steps : t -> int
  (** Engine budget already spent; pass to [Engine.start ~spent_steps]
      so the resumed run trips at the same absolute budget. *)

  val engine_peak_nodes : t -> int
  val repairs : t -> int
  val live_nodes : t -> int

  val matches_implies : t -> sigma:Pathlang.Constr.t list -> Pathlang.Constr.t -> bool
  (** Does this snapshot belong to [implies ~sigma phi]? *)

  val matches_run : t -> sigma:Pathlang.Constr.t list -> Sgraph.Graph.t -> bool

  val to_string : t -> string
  val of_string : string -> (t, string) result

  val save : path:string -> t -> (unit, string) result
  (** Atomic (temp + fsync + rename) with bounded retry on transient
      I/O failure; the fault site is [snapshot.write]. *)

  val load : string -> (t, string) result
  (** Fault site [snapshot.read]. *)
end

val run :
  ?ctl:Engine.t ->
  ?tracked:Sgraph.Graph.node list ->
  ?park:(Snapshot.t -> unit) ->
  ?resume:Snapshot.t ->
  Sgraph.Graph.t ->
  Pathlang.Constr.t list ->
  outcome * Sgraph.Graph.node list
(** Chases a copy of the graph.  [tracked] nodes are followed through
    merges and returned re-addressed.

    [park] is called with a resumable snapshot whenever the run stops
    without reaching a fixpoint — budget exhaustion, cancellation, or
    an injected [Fault.Crash] (which is absorbed into
    [Exhausted {reason = Crashed}] rather than escaping); the park is
    recorded in the exhaustion notes.  [resume] continues from a parked
    snapshot instead of a cold start: [tracked] is then taken from the
    snapshot, and the resumed repair sequence is identical to the one
    an uninterrupted run would have performed.
    @raise Invalid_argument if the snapshot's fingerprint does not
    match [g]/[sigma] — check [Snapshot.matches_run] first. *)

val implies :
  ?ctl:Engine.t ->
  ?park:(Snapshot.t -> unit) ->
  ?resume:Snapshot.t ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  Verdict.t
(** [park]/[resume] as in {!run}; the two tracked premise nodes travel
    inside the snapshot.
    @raise Invalid_argument on a fingerprint mismatch — check
    [Snapshot.matches_implies] first. *)

val merge : Sgraph.Graph.t -> Sgraph.Graph.node -> Sgraph.Graph.node
  -> Sgraph.Graph.t * (Sgraph.Graph.node -> Sgraph.Graph.node)
(** [merge g a b] identifies the two nodes (the root stays the root) and
    returns the contracted graph with the renaming.  Exposed for the
    typed-countermodel builders and tests. *)

val run_reference :
  ?ctl:Engine.t ->
  ?tracked:Sgraph.Graph.node list ->
  Sgraph.Graph.t ->
  Pathlang.Constr.t list ->
  outcome * Sgraph.Graph.node list
(** {!run} on the retained copy-per-step engine: every EGD rebuilds and
    renumbers the graph, every step rescans all of Sigma.  Kept as the
    differential-testing oracle for the incremental engine; performs
    the same repair sequence as {!run}. *)

val implies_reference :
  ?ctl:Engine.t ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  Verdict.t
(** {!implies} on the reference engine. *)
