module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module PR = Automata.Prefix_rewrite

type error = Not_word_constraint of Pathlang.Constr.t

let c_systems = Obs.Counter.make ~unit_:"compilations" "word.systems_compiled"

let c_route_word =
  Obs.Counter.tag
    (Obs.Counter.family ~unit_:"decisions" ~label:"route" "decision.route")
    "word"

let h_latency_word =
  Obs.Histogram.tag
    (Obs.Histogram.family ~unit_:"ns"
       ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]
       ~label:"route" "decision.latency_ns")
    "word"

let audit_word phi b elapsed_ns =
  if Obs.Audit.enabled () then
    Obs.Audit.emit "decision"
      ~fields:
        [
          ("route", Obs.Json.String "word");
          ("prefilter", Obs.Json.String "n/a");
          ("verdict", Obs.Json.String (if b then "implied" else "refuted"));
          ("phi", Obs.Json.String (Format.asprintf "%a" Constr.pp phi));
          ("elapsed_ns", Obs.Json.Int (Int64.to_int elapsed_ns));
        ]

let check_word sigma =
  match List.find_opt (fun c -> not (Constr.is_word c)) sigma with
  | Some c -> Error (Not_word_constraint c)
  | None -> Ok ()

let system_of ~sigma ~extra =
  Obs.Counter.incr c_systems;
  let rules =
    List.map (fun c -> { PR.lhs = Constr.lhs c; rhs = Constr.rhs c }) sigma
  in
  let alphabet =
    Label.Set.elements
      (List.fold_left
         (fun acc c -> Label.Set.union acc (Constr.labels_used c))
         extra sigma)
  in
  PR.compile ~alphabet rules

let with_word_instance ~sigma phi f =
  match check_word (phi :: sigma) with
  | Error _ as e -> e
  | Ok () ->
      Obs.Span.with_ "word.instance"
        ~args:[ ("sigma", string_of_int (List.length sigma)) ]
        (fun () ->
          let system = system_of ~sigma ~extra:(Constr.labels_used phi) in
          Ok (f system (Constr.lhs phi) (Constr.rhs phi)))

let implies ~sigma phi =
  if not (Obs.enabled () || Obs.Audit.enabled ()) then
    with_word_instance ~sigma phi PR.derives
  else begin
    let t0 = Obs.now_ns () in
    match with_word_instance ~sigma phi PR.derives with
    | Ok b as r ->
        let elapsed = Int64.sub (Obs.now_ns ()) t0 in
        Obs.Counter.incr c_route_word;
        Obs.Histogram.observe h_latency_word (Int64.to_float elapsed);
        audit_word phi b elapsed;
        r
    | Error _ as e -> e
  end

let implies_exn ~sigma phi =
  match implies ~sigma phi with
  | Ok b -> b
  | Error (Not_word_constraint c) ->
      invalid_arg
        (Format.asprintf "Word_untyped.implies_exn: %a is not a word constraint"
           Constr.pp c)

let implies_via_post ~sigma phi = with_word_instance ~sigma phi PR.derives_via_post

let implies_via_worklist ~sigma phi =
  with_word_instance ~sigma phi PR.derives_worklist

let derivation ?(max_frontier = 4096) ~sigma phi =
  with_word_instance ~sigma phi (fun system alpha beta ->
      if not (PR.derives system alpha beta) then Error "not implied"
      else if Path.equal alpha beta then Ok (Axioms.Reflexivity alpha)
      else begin
        (* BFS from alpha through words that still derive beta; the target
           is at the end of some shortest rewriting sequence, so BFS with
           the derives-filter finds it without wandering. *)
        let parent = Hashtbl.create 64 in
        let key = Path.to_string in
        let q = Queue.create () in
        Hashtbl.add parent (key alpha) None;
        Queue.add alpha q;
        let found = ref false in
        let frontier_budget = ref max_frontier in
        while (not !found) && not (Queue.is_empty q) do
          let w = Queue.pop q in
          let steps =
            (* one-step successors together with the rule that produced
               them and the surviving suffix *)
            List.filter_map
              (fun (r : PR.rule) ->
                match Path.strip_prefix ~prefix:r.PR.lhs w with
                | Some suffix -> Some (Path.concat r.PR.rhs suffix, r, suffix)
                | None -> None)
              (PR.rules system)
          in
          List.iter
            (fun (w', r, suffix) ->
              if (not !found) && not (Hashtbl.mem parent (key w')) then
                if PR.derives system w' beta then begin
                  decr frontier_budget;
                  if !frontier_budget >= 0 then begin
                    Hashtbl.add parent (key w') (Some (w, r, suffix));
                    Queue.add w' q;
                    if Path.equal w' beta then found := true
                  end
                end)
            steps
        done;
        if not !found then Error "frontier budget exhausted"
        else begin
          (* reconstruct the chain of one-step rewrites and build the
             transitivity/congruence derivation *)
          let rec chain w acc =
            match Hashtbl.find parent (key w) with
            | None -> acc
            | Some (prev, r, suffix) -> chain prev ((prev, r, suffix, w) :: acc)
          in
          let steps = chain beta [] in
          let step_derivation (_, (r : PR.rule), suffix, _) =
            let axiom =
              Axioms.Axiom (Constr.word ~lhs:r.PR.lhs ~rhs:r.PR.rhs)
            in
            if Path.is_empty suffix then axiom
            else Axioms.Right_congruence (axiom, suffix)
          in
          match List.map step_derivation steps with
          | [] -> Ok (Axioms.Reflexivity alpha)
          | d :: ds ->
              Ok
                (Axioms.simplify
                   (List.fold_left (fun acc d' -> Axioms.Transitivity (acc, d')) d ds))
        end
      end)

let derivation_bfs ?max_configs ~sigma phi =
  with_word_instance ~sigma phi (fun s a b -> PR.derives_bfs ?max_configs s a b)

let consequences_sample ~sigma ~from ~max_steps =
  match check_word sigma with
  | Error _ -> []
  | Ok () ->
      let system = system_of ~sigma ~extra:(Path.labels_used from) in
      let seen = Hashtbl.create 64 in
      let key = Path.to_string in
      let q = Queue.create () in
      Hashtbl.add seen (key from) ();
      Queue.add from q;
      let acc = ref [] in
      let steps = ref max_steps in
      while (not (Queue.is_empty q)) && !steps > 0 do
        decr steps;
        let w = Queue.pop q in
        acc := w :: !acc;
        List.iter
          (fun w' ->
            if not (Hashtbl.mem seen (key w')) then begin
              Hashtbl.add seen (key w') ();
              Queue.add w' q
            end)
          (PR.one_step system w)
      done;
      List.rev !acc
