(** One-call comparison of an implication instance across the paper's
    contexts — the "interaction" of the title as an API.

    Given [Sigma ∪ {phi}] (and optionally a schema), run every
    procedure that applies and report the verdicts side by side:
    - the PTIME word-constraint procedure (when everything is in P_w),
    - the Definition 2.3 local-extent procedure (when the instance is
      prefix-bounded),
    - the budgeted chase / bounded model search for general untyped P_c,
    - under an M schema: the cubic certified procedure,
    - under an M+ schema: bounded exhaustive refutation (implication
      itself being undecidable, Theorem 5.2).

    The examples and the bench use this to exhibit instances whose
    answer changes when the type system is imposed. *)

type typed_outcome =
  | M_decided of Typed_m.outcome
  | Mplus_refuted of Schema.Typecheck.t
      (** a bounded countermodel in U_f(Delta): definitely not implied *)
  | Mplus_open of string
      (** no bounded countermodel found; implication in M+ is
          undecidable, so this stays open *)
  | Typed_error of string

type report = {
  word_untyped : bool option;
      (** [None] when some constraint is not in P_w *)
  local_extent : (Pathlang.Path.t * Pathlang.Label.t * bool) option;
      (** the bound [(alpha, K)] used and the verdict, when the
          instance is prefix-bounded *)
  chase : Verdict.t;
  typed : typed_outcome option;  (** when a schema was supplied *)
}

val compare :
  ?schema:Schema.Mschema.t ->
  ?budget:Engine.Budget.t ->
  ?search_bounds:Typed_search.bounds ->
  sigma:Pathlang.Constr.t list ->
  Pathlang.Constr.t ->
  report
(** [budget] (default [Engine.Budget.default]) governs each budgeted
    procedure — the chase/enumeration semi-decider and the bounded M+
    search each get a fresh controller started from it, so every row is
    deadline-bounded. *)

val pp : Format.formatter -> report -> unit
