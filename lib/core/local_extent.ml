module Constr = Pathlang.Constr
module Path = Pathlang.Path
module Label = Pathlang.Label
module Bounded = Pathlang.Bounded
module Graph = Sgraph.Graph

type reduction = {
  partition : Bounded.partition;
  sigma1_k : Constr.t list;
  sigma1_r : Constr.t list;
  phi1 : Constr.t;
  sigma2_k : Constr.t list;
  phi2 : Constr.t;
}

let unshift_all rho cs =
  List.map
    (fun c ->
      match Constr.unshift rho c with
      | Some c' -> c'
      | None -> assert false (* guaranteed by the partition checks *))
    cs

let reduce ~alpha ~k ~sigma ~phi =
  if not (Bounded.is_bounded ~alpha ~k phi) then
    Error
      (Format.asprintf "test constraint %a is not bounded by (%a, %a)" Constr.pp
         phi Path.pp alpha Label.pp k)
  else
    match Bounded.partition ~alpha ~k sigma with
    | Error e -> Error e
    | Ok partition ->
        let sigma1_k = unshift_all alpha partition.Bounded.sigma_k in
        let sigma1_r = unshift_all alpha partition.Bounded.sigma_r in
        let phi1 =
          match Constr.unshift alpha phi with
          | Some c -> c
          | None -> assert false
        in
        let kpath = Path.singleton k in
        let sigma2_k = unshift_all kpath sigma1_k in
        let phi2 =
          match Constr.unshift kpath phi1 with
          | Some c -> c
          | None -> assert false
        in
        Ok { partition; sigma1_k; sigma1_r; phi1; sigma2_k; phi2 }

let implies ~alpha ~k ~sigma ~phi =
  match reduce ~alpha ~k ~sigma ~phi with
  | Error e -> Error e
  | Ok red -> (
      match Word_untyped.implies ~sigma:red.sigma2_k red.phi2 with
      | Ok b -> Ok b
      | Error (Word_untyped.Not_word_constraint c) ->
          Error
            (Format.asprintf "reduction produced a non-word constraint %a"
               Constr.pp c))

let lift_k g ~k =
  let h = Graph.create () in
  let rename = Graph.union_disjoint h g in
  Graph.add_edge h (Graph.root h) k (Graph.root h);
  Graph.add_edge h (Graph.root h) k (rename (Graph.root g));
  h

let lift_alpha g ~alpha =
  if Path.is_empty alpha then Graph.copy g
  else begin
    let h = Graph.create () in
    let rename = Graph.union_disjoint h g in
    Graph.add_path h (Graph.root h) alpha (rename (Graph.root g));
    h
  end

let figure3 g ~alpha ~k = lift_alpha (lift_k g ~k) ~alpha

let countermodel ?ctl ~alpha ~k ~sigma ~phi ~max_nodes () =
  let ctl = match ctl with Some c -> c | None -> Engine.default () in
  match reduce ~alpha ~k ~sigma ~phi with
  | Error e -> Error e
  | Ok red ->
      let labels =
        Label.Set.elements
          (List.fold_left
             (fun acc c -> Label.Set.union acc (Constr.labels_used c))
             (Constr.labels_used red.phi2)
             red.sigma2_k)
      in
      let labels = if labels = [] then [ k ] else labels in
      Ok
        (Option.map
           (fun g -> figure3 g ~alpha ~k)
           (Sgraph.Enumerate.find_countermodel
              ~interrupt:(Engine.interrupted ctl) ~max_nodes ~labels
              ~sigma:red.sigma2_k ~phi:red.phi2 ()))
