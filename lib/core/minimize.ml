module Graph = Sgraph.Graph
module Check = Sgraph.Check

let drop_node g victim =
  if victim = Graph.root g then invalid_arg "Minimize.drop_node: root";
  let rename n = if n > victim then n - 1 else n in
  let h = Graph.create () in
  for _ = 2 to Graph.node_count g - 1 do
    ignore (Graph.add_node h)
  done;
  Graph.iter_edges g (fun x k y ->
      if x <> victim && y <> victim then Graph.add_edge h (rename x) k (rename y));
  h

let drop_edge g (x, k, y) =
  let h = Graph.create () in
  for _ = 2 to Graph.node_count g do
    ignore (Graph.add_node h)
  done;
  Graph.iter_edges g (fun x' k' y' ->
      if not (x = x' && y = y' && Pathlang.Label.equal k k') then
        Graph.add_edge h x' k' y');
  h

let is_countermodel g ~sigma ~phi =
  Check.holds_all g sigma && not (Check.holds g phi)

let countermodel g ~sigma ~phi =
  if not (is_countermodel g ~sigma ~phi) then
    invalid_arg "Minimize.countermodel: input is not a countermodel";
  (* node pass, repeated until no node can go *)
  let rec node_pass g =
    let rec try_nodes n =
      if n >= Graph.node_count g then None
      else if n = Graph.root g then try_nodes (n + 1)
      else
        let h = drop_node g n in
        if is_countermodel h ~sigma ~phi then Some h else try_nodes (n + 1)
    in
    match try_nodes 0 with Some h -> node_pass h | None -> g
  in
  let g = node_pass g in
  (* edge pass *)
  let rec edge_pass g =
    let rec try_edges = function
      | [] -> None
      | e :: rest ->
          let h = drop_edge g e in
          if is_countermodel h ~sigma ~phi then Some h else try_edges rest
    in
    match try_edges (Graph.edges g) with
    | Some h -> edge_pass h
    | None -> g
  in
  let g = edge_pass g in
  assert (is_countermodel g ~sigma ~phi);
  g
