(** Implication of local extent constraints on semistructured data:
    Theorem 5.1 and Lemma 5.3.

    Input: a finite subset [Sigma ∪ {phi}] of P_c with prefix bounded by
    a path [alpha] and a label [K] (Definition 2.3), where [phi] itself
    is bounded by [alpha] and [K].  On untyped data the constraints on
    other local databases ([Sigma_r]) do not interact, and stripping the
    common prefix twice ([g1] removes [alpha], [g2] removes [K])
    reduces the question to word constraint implication, hence PTIME:

    [Sigma |= phi  iff  Sigma^1_K ∪ Sigma^1_r |= phi^1  iff
     Sigma^2_K |= phi^2]

    and likewise for finite implication (the two coincide here because
    they coincide for P_w).

    The word-level step inherits {!Word_untyped}'s completeness scope:
    exact whenever no constraint ends in the empty path; with [eps]
    right-hand sides (equality-generating constraints, which Def 2.3
    does not forbid for the conclusions) the answer is a sound
    under-approximation of implication — see the discussion in
    {!Word_untyped}. *)

type reduction = {
  partition : Pathlang.Bounded.partition;
      (** [Sigma_K] / [Sigma_r] split of the input *)
  sigma1_k : Pathlang.Constr.t list;  (** [g1] applied to [Sigma_K] *)
  sigma1_r : Pathlang.Constr.t list;  (** [g1] applied to [Sigma_r] *)
  phi1 : Pathlang.Constr.t;
  sigma2_k : Pathlang.Constr.t list;
      (** [g2] applied to [Sigma^1_K]: word constraints *)
  phi2 : Pathlang.Constr.t;  (** a word constraint *)
}

val reduce :
  alpha:Pathlang.Path.t ->
  k:Pathlang.Label.t ->
  sigma:Pathlang.Constr.t list ->
  phi:Pathlang.Constr.t ->
  (reduction, string) result
(** Checks the Definition 2.3 side conditions and computes the two
    prefix-stripping steps. *)

val implies :
  alpha:Pathlang.Path.t ->
  k:Pathlang.Label.t ->
  sigma:Pathlang.Constr.t list ->
  phi:Pathlang.Constr.t ->
  (bool, string) result
(** The PTIME procedure: reduce, then decide word implication. *)

val lift_k : Sgraph.Graph.t -> k:Pathlang.Label.t -> Sgraph.Graph.t
(** The structure [H] of Figure 3: a fresh root [r_H] with a [K]-loop
    and a [K]-edge to (a copy of) the old root.  If [G] is a finite
    model of [/\ Sigma^2_K /\ not phi^2] then [H] is a finite model of
    [/\ Sigma^1_K /\ /\ Sigma^1_r /\ not phi^1]. *)

val lift_alpha : Sgraph.Graph.t -> alpha:Pathlang.Path.t -> Sgraph.Graph.t
(** The first lift in the proof of Lemma 5.3: a fresh root with an
    [alpha]-path to (a copy of) the old root; turns a model of
    [/\ Sigma^1 /\ not phi^1] into a model of [/\ Sigma /\ not phi]. *)

val figure3 :
  Sgraph.Graph.t ->
  alpha:Pathlang.Path.t ->
  k:Pathlang.Label.t ->
  Sgraph.Graph.t
(** Both lifts composed: a countermodel at the word level becomes a
    countermodel for the original bounded instance. *)

val countermodel :
  ?ctl:Engine.t ->
  alpha:Pathlang.Path.t ->
  k:Pathlang.Label.t ->
  sigma:Pathlang.Constr.t list ->
  phi:Pathlang.Constr.t ->
  max_nodes:int ->
  unit ->
  (Sgraph.Graph.t option, string) result
(** When [implies] answers no, search (bounded enumeration at the word
    level, then {!figure3}) for an explicit finite countermodel of the
    original instance.  The enumeration honors [ctl]'s deadline and
    cancellation token (default: a fresh [Engine.default ()], i.e. a
    10 s deadline).  The trailing [unit] erases [?ctl] when omitted. *)
