(** Zero-dependency domain pool for the embarrassingly-parallel loops.

    A {!t} owns [jobs - 1] worker domains behind a [Mutex]/[Condition]
    work queue; the submitting thread works the queue too, so [jobs]
    counts total workers, not helpers.  Batches hand out task indices
    [0 .. tasks-1] in ascending order and the combinators reduce
    deterministically:

    - {!run} returns results positionally, indistinguishable from
      [Array.init tasks f];
    - {!find_min} implements first-hit-wins early exit with the {e
      least} winning task index, so a search partitioned into ascending
      chunks returns exactly the witness a sequential left-to-right
      scan would — the determinism contract the countermodel searches
      rely on (DESIGN.md section 15).

    Creating a pool with [jobs > 1] arms [Pathlang.Intern_lock] before
    any domain spawns, making label interning and path hash-consing
    safe to call from tasks.  A pool with [jobs = 1] spawns nothing and
    runs every combinator inline; all pool-aware entry points treat a
    missing pool the same way.

    Obs note: worker domains write metrics into their own registry
    shards.  Batch completion is communicated through the pool mutex,
    which establishes the happens-before edge the registry needs, so
    counters read after a batch returns merge exactly — {!shutdown}
    (which joins the domains) is only required before process exit.

    Thread-safety contract for task bodies: they may freely build
    graphs, paths and constraints and bump Obs metrics, but must not
    mutate shared structures, and must not call [Engine.tick] on a
    controller owned by another domain ([Engine.ok]/[Engine.interrupted]
    are domain-safe; [tick] is owner-only). *)

type t

val jobs_of_env : unit -> int
(** [PATHCTL_JOBS] parsed and clamped to [1 .. 64]; 1 when unset or
    unparseable. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!jobs_of_env}; clamped to [1 .. 64].  With
    [jobs > 1], arms the interning lock and spawns [jobs - 1] worker
    domains that live until {!shutdown}. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Required before
    process exit for a clean [Domain.join] (and hence for the obs
    registry's join-exactness); forgetting it leaks blocked domains. *)

val with_pool : ?jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f (Some pool)] with a freshly created
    pool and shuts it down afterwards — or [f None] without spawning
    anything when the resolved job count is 1.  The [None] case is what
    lets callers thread [?pool] straight through. *)

val run : t -> tasks:int -> (int -> 'a) -> 'a array
(** Run [f 0 .. f (tasks-1)] across the pool and return the results in
    index order.  If any task raises, the exception from the {e least}
    failing index is re-raised (with its backtrace) after the batch
    drains, so failure is deterministic too. *)

val find_min :
  t ->
  ?stop:(unit -> bool) ->
  tasks:int ->
  (stop:(unit -> bool) -> int -> 'a option) ->
  'a option
(** Early-exit search: returns [f i] for the least [i] where it is
    [Some _].  Each task receives a [~stop] predicate combining the
    caller's [?stop] hook (e.g. [Engine.interrupted ctl]) with the
    first-hit cancellation fan-out: once some task [w] wins, [stop]
    turns true for every task with index [> w], while tasks [< w] run
    to completion — that is what makes the winner the global minimum.
    Tasks not yet started when a lower index has already won are
    skipped entirely.

    If the external [?stop] fires, in-flight tasks wind down early and
    the result may be [None] exactly as a sequential interrupted scan's
    would be. *)

val chunks : chunks:int -> total:int -> (int * int) list
(** Split [0 .. total-1] into at most [chunks] contiguous half-open
    ranges [(lo, hi)], ascending, sizes differing by at most one, whose
    concatenation is exactly [0 .. total-1].  [chunks] is clamped to
    [1 .. total]; empty when [total <= 0].  The partition the
    enumeration fan-outs use (QCheck-checked in [test_par]). *)
