(* Domain pool: a mutable batch cell guarded by one mutex, two
   condition variables (workers wait for work, the submitter waits for
   the drain), and [jobs - 1] long-lived worker domains.  One batch is
   outstanding at a time; the submitting thread participates, so a
   1-job pool degenerates to a plain loop and a j-job pool uses exactly
   j domains. *)

let c_batches = Obs.Counter.make ~unit_:"batches" "par.batches"
let c_tasks = Obs.Counter.make ~unit_:"tasks" "par.tasks"
let g_jobs = Obs.Gauge.make ~unit_:"domains" "par.jobs"

type batch = {
  body : int -> unit;  (* must not raise: wrapped by the combinators *)
  total : int;
  mutable next : int;  (* next undispensed task index *)
  mutable completed : int;
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;  (* a batch has undispensed tasks, or shutdown *)
  idle : Condition.t;  (* the current batch fully completed *)
  mutable batch : batch option;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

let max_jobs = 64

let jobs_of_env () =
  match Sys.getenv_opt "PATHCTL_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> min j max_jobs
      | _ -> 1)

(* Claim one task under the lock; caller must hold [t.m]. *)
let claim t =
  match t.batch with
  | Some b when b.next < b.total ->
      let i = b.next in
      b.next <- b.next + 1;
      Some (b, i)
  | _ -> None

let finish t b =
  b.completed <- b.completed + 1;
  if b.completed = b.total then Condition.broadcast t.idle

let rec worker_loop t =
  Mutex.lock t.m;
  let rec await () =
    if t.stopping then None
    else
      match claim t with
      | Some _ as c -> c
      | None ->
          Condition.wait t.work t.m;
          await ()
  in
  match await () with
  | None -> Mutex.unlock t.m
  | Some (b, i) ->
      Mutex.unlock t.m;
      b.body i;
      Mutex.lock t.m;
      finish t b;
      Mutex.unlock t.m;
      worker_loop t

let create ?jobs () =
  let jobs =
    max 1 (min max_jobs (match jobs with Some j -> j | None -> jobs_of_env ()))
  in
  (* Workers intern labels and hash-cons paths; switch the global
     tables to the locked path before the first domain can run. *)
  if jobs > 1 then Pathlang.Intern_lock.arm ();
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      stopping = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    t.workers <-
      Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Obs.Gauge.set g_jobs jobs;
  t

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let jobs =
    max 1 (min max_jobs (match jobs with Some j -> j | None -> jobs_of_env ()))
  in
  if jobs <= 1 then f None
  else begin
    let t = create ~jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
  end

(* Run one batch to completion; the calling thread drains the queue
   alongside the workers, then waits for stragglers. *)
let run_batch t ~total body =
  if total > 0 then begin
    Obs.Counter.incr c_batches;
    Mutex.lock t.m;
    if t.batch <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Par: a batch is already running on this pool"
    end;
    let b = { body; total; next = 0; completed = 0 } in
    t.batch <- Some b;
    Condition.broadcast t.work;
    let rec drive () =
      match claim t with
      | Some (_, i) ->
          Mutex.unlock t.m;
          body i;
          Mutex.lock t.m;
          finish t b;
          drive ()
      | None ->
          if b.completed < b.total then begin
            Condition.wait t.idle t.m;
            drive ()
          end
    in
    drive ();
    t.batch <- None;
    Mutex.unlock t.m
  end

(* First failure by least task index, kept deterministically. *)
type failure = { index : int; exn : exn; bt : Printexc.raw_backtrace }

let record_failure cell index exn bt =
  let rec go () =
    match Atomic.get cell with
    | Some f when f.index <= index -> ()
    | cur ->
        if not (Atomic.compare_and_set cell cur (Some { index; exn; bt })) then
          go ()
  in
  go ()

let reraise cell =
  match Atomic.get cell with
  | Some f -> Printexc.raise_with_backtrace f.exn f.bt
  | None -> ()

let run t ~tasks f =
  if tasks <= 0 then [||]
  else if t.jobs = 1 then Array.init tasks f
  else begin
    let results = Array.make tasks None in
    let failed = Atomic.make None in
    let body i =
      Obs.Counter.incr c_tasks;
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> record_failure failed i e (Printexc.get_raw_backtrace ())
    in
    run_batch t ~total:tasks body;
    reraise failed;
    Array.map (function Some v -> v | None -> assert false) results
  end

let no_stop () = false

let find_min t ?(stop = no_stop) ~tasks f =
  if tasks <= 0 then None
  else if t.jobs = 1 then begin
    (* inline: the classic left-to-right search *)
    let rec go i =
      if i >= tasks || stop () then None
      else match f ~stop i with Some _ as r -> r | None -> go (i + 1)
    in
    go 0
  end
  else begin
    let best = Atomic.make max_int in
    let results = Array.make tasks None in
    let failed = Atomic.make None in
    let body i =
      Obs.Counter.incr c_tasks;
      (* a lower index already won: this task's result cannot matter *)
      if i < Atomic.get best && not (stop ()) then begin
        let local_stop () = stop () || Atomic.get best < i in
        match f ~stop:local_stop i with
        | Some _ as r ->
            results.(i) <- r;
            let rec lower () =
              let cur = Atomic.get best in
              if i < cur && not (Atomic.compare_and_set best cur i) then
                lower ()
            in
            lower ()
        | None -> ()
        | exception e ->
            record_failure failed i e (Printexc.get_raw_backtrace ())
      end
    in
    run_batch t ~total:tasks body;
    reraise failed;
    match Atomic.get best with w when w = max_int -> None | w -> results.(w)
  end

let chunks ~chunks ~total =
  if total <= 0 then []
  else begin
    let n = max 1 (min chunks total) in
    let base = total / n and extra = total mod n in
    let rec go i lo acc =
      if i = n then List.rev acc
      else
        let size = base + if i < extra then 1 else 0 in
        go (i + 1) (lo + size) ((lo, lo + size) :: acc)
    in
    go 0 0 []
  end
