module Label = Pathlang.Label
module Path = Pathlang.Path

type node = int

module Node_set = Set.Make (Int)

type t = {
  mutable size : int;
  adj : (node * Label.t, node list) Hashtbl.t;
  radj : (node * Label.t, node list) Hashtbl.t;
  mem : (node * Label.t * node, unit) Hashtbl.t;
  outl : (node, Label.Set.t) Hashtbl.t;
  inl : (node, Label.Set.t) Hashtbl.t;
  mutable all_labels : Label.Set.t;
  mutable edge_count : int;
}

let create () =
  {
    size = 1;
    adj = Hashtbl.create 64;
    radj = Hashtbl.create 64;
    mem = Hashtbl.create 64;
    outl = Hashtbl.create 64;
    inl = Hashtbl.create 64;
    all_labels = Label.Set.empty;
    edge_count = 0;
  }

let root _ = 0

let add_node g =
  let n = g.size in
  g.size <- n + 1;
  n

let mem_node g n = n >= 0 && n < g.size

let succ g x k = Option.value ~default:[] (Hashtbl.find_opt g.adj (x, k))
let pred g y k = Option.value ~default:[] (Hashtbl.find_opt g.radj (y, k))

let has_edge g x k y = Hashtbl.mem g.mem (x, k, y)

let add_label_index tbl n k =
  let set = Option.value ~default:Label.Set.empty (Hashtbl.find_opt tbl n) in
  Hashtbl.replace tbl n (Label.Set.add k set)

let remove_label_index tbl n k =
  match Hashtbl.find_opt tbl n with
  | None -> ()
  | Some set ->
      let set = Label.Set.remove k set in
      if Label.Set.is_empty set then Hashtbl.remove tbl n
      else Hashtbl.replace tbl n set

let add_edge g x k y =
  if not (mem_node g x && mem_node g y) then
    invalid_arg "Graph.add_edge: unknown node";
  if not (has_edge g x k y) then begin
    Hashtbl.replace g.mem (x, k, y) ();
    Hashtbl.replace g.adj (x, k) (y :: succ g x k);
    Hashtbl.replace g.radj (y, k) (x :: pred g y k);
    add_label_index g.outl x k;
    add_label_index g.inl y k;
    g.all_labels <- Label.Set.add k g.all_labels;
    g.edge_count <- g.edge_count + 1
  end

let remove_from_bucket tbl key n =
  match Hashtbl.find_opt tbl key with
  | None -> []
  | Some l -> (
      match List.filter (fun m -> m <> n) l with
      | [] ->
          Hashtbl.remove tbl key;
          []
      | l' ->
          Hashtbl.replace tbl key l';
          l')

let remove_edge g x k y =
  if has_edge g x k y then begin
    Hashtbl.remove g.mem (x, k, y);
    if remove_from_bucket g.adj (x, k) y = [] then remove_label_index g.outl x k;
    if remove_from_bucket g.radj (y, k) x = [] then remove_label_index g.inl y k;
    g.edge_count <- g.edge_count - 1
    (* [all_labels] is deliberately left alone: it stays an over-
       approximation of the labels in use, which is all its clients
       (alphabet choices) need. *)
  end

let add_path g x rho y =
  match Path.to_labels rho with
  | [] -> if x <> y then invalid_arg "Graph.add_path: empty path between distinct nodes"
  | labels ->
      let rec go src = function
        | [] -> assert false
        | [ k ] -> add_edge g src k y
        | k :: rest ->
            let mid = add_node g in
            add_edge g src k mid;
            go mid rest
      in
      go x labels

let ensure_path g x rho =
  let rec go src = function
    | [] -> src
    | k :: rest -> (
        match succ g src k with
        | y :: _ -> go y rest
        | [] ->
            let y = add_node g in
            add_edge g src k y;
            go y rest)
  in
  go x (Path.to_labels rho)

let out_labels g n = Option.value ~default:Label.Set.empty (Hashtbl.find_opt g.outl n)
let in_labels g n = Option.value ~default:Label.Set.empty (Hashtbl.find_opt g.inl n)

let succ_all g n =
  Label.Set.fold
    (fun k acc -> List.fold_left (fun acc y -> (k, y) :: acc) acc (succ g n k))
    (out_labels g n) []

let node_count g = g.size
let edge_count g = g.edge_count

let nodes g = List.init g.size (fun i -> i)

let iter_edges g f =
  for x = 0 to g.size - 1 do
    Label.Set.iter
      (fun k -> List.iter (fun y -> f x k y) (succ g x k))
      (out_labels g x)
  done

let fold_edges g f acc =
  let acc = ref acc in
  iter_edges g (fun x k y -> acc := f !acc x k y);
  !acc

let edges g = List.rev (fold_edges g (fun acc x k y -> (x, k, y) :: acc) [])

let labels g = g.all_labels

let copy g =
  {
    size = g.size;
    adj = Hashtbl.copy g.adj;
    radj = Hashtbl.copy g.radj;
    mem = Hashtbl.copy g.mem;
    outl = Hashtbl.copy g.outl;
    inl = Hashtbl.copy g.inl;
    all_labels = g.all_labels;
    edge_count = g.edge_count;
  }

let of_edges es =
  let g = create () in
  let max_id =
    List.fold_left (fun m (x, _, y) -> max m (max x y)) 0 es
  in
  while g.size <= max_id do
    ignore (add_node g)
  done;
  List.iter (fun (x, k, y) -> add_edge g x (Label.make k) y) es;
  g

let union_disjoint g h =
  let offset = g.size in
  let rename n = n + offset in
  for _ = 1 to h.size do
    ignore (add_node g)
  done;
  iter_edges h (fun x k y -> add_edge g (rename x) k (rename y));
  rename

let sorted_edges g =
  List.sort compare
    (fold_edges g (fun acc x k y -> (x, Label.to_string k, y) :: acc) [])

let equal g h = g.size = h.size && sorted_edges g = sorted_edges h

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges@," g.size g.edge_count;
  iter_edges g
    (fun x k y -> Format.fprintf ppf "  %d -%a-> %d@," x Label.pp k y);
  Format.fprintf ppf "@]"
