module Label = Pathlang.Label

(* Partition refinement on successor signatures.  The signature of a
   node under a partition P is the set of (label, class) pairs of its
   outgoing edges; refining until stable yields the largest forward
   bisimulation.  O(n^2 log n)-ish with sorting; fine at our scale. *)
let partition g =
  let n = Graph.node_count g in
  let classes = Array.make n 0 in
  let changed = ref true in
  while !changed do
    let signature v =
      List.sort_uniq compare
        (List.map
           (fun (k, w) -> (Label.to_string k, classes.(w)))
           (Graph.succ_all g v))
    in
    let index = Hashtbl.create 16 in
    let next = ref 0 in
    let fresh_classes =
      Array.init n (fun v ->
          let key = (classes.(v), signature v) in
          match Hashtbl.find_opt index key with
          | Some c -> c
          | None ->
              let c = !next in
              incr next;
              Hashtbl.add index key c;
              c)
    in
    changed := fresh_classes <> classes;
    Array.blit fresh_classes 0 classes 0 n
  done;
  classes

let quotient g =
  let classes = partition g in
  let n_classes =
    1 + Array.fold_left max 0 classes
  in
  let h = Graph.create () in
  (* class of the root must be node 0 in the quotient: renumber so the
     root's class comes first *)
  let root_class = classes.(Graph.root g) in
  let renum c =
    if c = root_class then 0 else if c < root_class then c + 1 else c
  in
  for _ = 2 to n_classes do
    ignore (Graph.add_node h)
  done;
  Graph.iter_edges g (fun x k y ->
      Graph.add_edge h (renum classes.(x)) k (renum classes.(y)));
  (h, fun v -> renum classes.(v))

let bisimilar g v w =
  let classes = partition g in
  classes.(v) = classes.(w)
