(** A {!Graph} with union-find node identity, for in-place chasing.

    The chase's EGD repairs identify nodes.  Rebuilding and renumbering
    the graph per merge (the historical implementation) costs O(V+E)
    per repair; this wrapper instead keeps a union-find forest over the
    physical node ids and, on {!union}, splices the victim's adjacency
    into the target in time proportional to the victim's degree.  Dead
    (absorbed) nodes remain as isolated physical ids, so evaluation
    from the root over the underlying {!graph} is unaffected; {!compact}
    produces a dense renumbered snapshot when a clean graph must leave
    the chase.

    The class containing the root is always represented by the physical
    root (unions absorb into the smaller id, and the root is node 0). *)

type t

val of_graph : Graph.t -> t
(** Takes ownership of the graph: the caller must not mutate it behind
    the wrapper's back (copy first if it is shared). *)

val graph : t -> Graph.t
(** The live physical graph.  Every edge connects representatives;
    absorbed nodes are isolated.  [Graph.node_count] counts dead nodes
    too — use {!live_count} for the model size. *)

val find : t -> Graph.node -> Graph.node
(** Canonical (representative) id of a node's class, with path
    compression.  Total over every id ever returned by {!add_node}. *)

val add_node : t -> Graph.node

val add_edge : t -> Graph.node -> Pathlang.Label.t -> Graph.node -> unit
(** Endpoints are canonicalized through {!find}. *)

val add_path : t -> Graph.node -> Pathlang.Path.t -> Graph.node -> unit
(** Like [Graph.add_path]: fresh intermediate nodes, canonicalized
    endpoints.
    @raise Invalid_argument on an empty path between distinct classes. *)

val union : t -> Graph.node -> Graph.node -> (Graph.node * Graph.node) option
(** [union t a b] identifies the classes of [a] and [b].  [None] when
    they already coincide; otherwise [Some (target, victim)] — the
    surviving representative and the absorbed one — after splicing
    every edge incident to [victim] onto [target] (cost: the victim's
    degree, not the graph size). *)

val live_count : t -> int
(** Number of equivalence classes = nodes of the quotient model. *)

val incident_labels : t -> Graph.node -> Pathlang.Label.Set.t
(** Labels on edges touching the node's class (in and out).  Used by
    the chase to seed its dirty-constraint worklist before a merge. *)

val serialize : t -> string
(** The full physical state — node count (dead nodes included), live
    class count, union-find parent array, and every edge — as a
    line-oriented text section.  Physical ids are preserved exactly:
    the chase allocates fresh ids by node count, so a resumed run only
    replays the uninterrupted run's repair sequence if ids round-trip
    verbatim. *)

val deserialize : string -> (t, string) result
(** Inverse of {!serialize}, with validation: parent pointers must
    satisfy the min-id invariant [parent.(i) <= i], the live count must
    equal the number of forest roots, edge endpoints must be in-range
    class representatives, and the edge section must be complete.  Any
    violation (including truncation) is an [Error] describing the first
    offending line — never an exception. *)

val compact : t -> Graph.t * (Graph.node -> Graph.node)
(** A dense, dead-node-free snapshot plus the renaming from any
    physical id to its node in the snapshot.  Representatives keep
    their relative order; the root maps to the root. *)
