let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let to_dot ?(name = "G") ?node_label g =
  let buf = Buffer.create 1024 in
  let label n =
    match node_label with Some f -> f n | None -> string_of_int n
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  List.iter
    (fun n ->
      let shape = if n = Graph.root g then ", shape=doublecircle" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" n (escape (label n)) shape))
    (Graph.nodes g);
  Graph.iter_edges g (fun x k y ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" x y
           (escape (Pathlang.Label.to_string k))));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path ?name ?node_label g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?node_label g))
