(* Each potential edge (x, k, y) is one bit; we count through all bit
   vectors.  [bits] computes the exponent without wrapping, so absurd
   bounds are rejected up front instead of silently overflowing
   [2^(L*n^2)] past the 62 usable bits of an int. *)

let potential_edges ~nodes ~labels =
  List.concat_map
    (fun x ->
      List.concat_map
        (fun k -> List.map (fun y -> (x, k, y)) (List.init nodes Fun.id))
        labels)
    (List.init nodes Fun.id)

(* [L * n^2] with every multiplication overflow-checked; [None] when the
   instance has 62 or more potential edges (not enumerable in an int
   bitmask — and not enumerable before the heat death of anything). *)
let bits ~nodes ~labels =
  let l = List.length labels in
  if nodes < 0 then invalid_arg "Enumerate: negative node count";
  if nodes = 0 || l = 0 then Some 0
  else if nodes > max_int / nodes then None
  else
    let nn = nodes * nodes in
    if nn > max_int / l then None
    else
      let b = nn * l in
      if b >= 62 then None else Some b

let count ~nodes ~labels =
  match bits ~nodes ~labels with Some b -> Some (1 lsl b) | None -> None

let no_interrupt () = false

let c_graphs = Obs.Counter.make ~unit_:"graphs" "enumerate.graphs_visited"

(* per-call cost of the brute-force fallback; long right tails here are
   the enumeration blow-ups the typed routes exist to avoid *)
let h_graphs =
  Obs.Histogram.make ~unit_:"graphs" "enumerate.graphs_per_call"

(* Walk masks [lo, hi) in ascending order; the unit of work both the
   sequential scan and each parallel chunk share, so a partitioned run
   visits candidates in exactly the sequential order within a chunk. *)
let iter_range ~interrupt ~pes ~nodes ~lo ~hi f =
  let bits = Array.length pes in
  let rec go mask =
    if mask >= hi || interrupt () then None
    else begin
      Obs.Counter.incr c_graphs;
      let g = Graph.create () in
      for _ = 2 to nodes do
        ignore (Graph.add_node g)
      done;
      for i = 0 to bits - 1 do
        if mask land (1 lsl i) <> 0 then
          let x, k, y = pes.(i) in
          Graph.add_edge g x k y
      done;
      if f g then Some g else go (mask + 1)
    end
  in
  go lo

(* Below this many candidates the fan-out overhead dwarfs the work. *)
let parallel_threshold = 256

let iter ?(interrupt = no_interrupt) ?pool ~nodes ~labels f =
  let total =
    match count ~nodes ~labels with
    | Some t -> t
    | None -> invalid_arg "Enumerate.iter: instance too large"
  in
  let pes = Array.of_list (potential_edges ~nodes ~labels) in
  match pool with
  | Some p when Par.jobs p > 1 && total >= parallel_threshold ->
      (* Contiguous ascending chunks + least-index-wins reduce: the
         returned graph is the minimal-mask witness, the same graph the
         sequential scan returns.  [f] runs on worker domains: it must
         be pure up to obs metrics (Check.holds is). *)
      let ranges =
        Array.of_list (Par.chunks ~chunks:(Par.jobs p * 4) ~total)
      in
      Par.find_min p ~stop:interrupt ~tasks:(Array.length ranges)
        (fun ~stop i ->
          let lo, hi = ranges.(i) in
          iter_range ~interrupt:stop ~pes ~nodes ~lo ~hi f)
  | _ -> iter_range ~interrupt ~pes ~nodes ~lo:0 ~hi:total f

let find_countermodel ?(interrupt = no_interrupt) ?pool ~max_nodes ~labels
    ~sigma ~phi () =
  Obs.Span.with_ "enumerate.find_countermodel"
    ~args:[ ("max_nodes", string_of_int max_nodes) ]
    (fun () ->
      let visited = Atomic.make 0 in
      let rec go n =
        if n > max_nodes || interrupt () then None
        else if count ~nodes:n ~labels = None then
          (* the space for [n] nodes alone exceeds 2^62 graphs: larger
             sizes only grow, so stop instead of looping forever *)
          None
        else
          match
            iter ~interrupt ?pool ~nodes:n ~labels (fun g ->
                Atomic.incr visited;
                (not (Check.holds g phi)) && Check.holds_all g sigma)
          with
          | Some g -> Some g
          | None -> go (n + 1)
      in
      let r = go 1 in
      if Obs.enabled () then
        Obs.Histogram.observe h_graphs (float_of_int (Atomic.get visited));
      r)
