(* Each potential edge (x, k, y) is one bit; we count through all bit
   vectors.  An int64-based counter keeps us honest about overflow: we refuse
   instances with 62 or more potential edges. *)

let potential_edges ~nodes ~labels =
  List.concat_map
    (fun x ->
      List.concat_map
        (fun k -> List.map (fun y -> (x, k, y)) (List.init nodes Fun.id))
        labels)
    (List.init nodes Fun.id)

let count ~nodes ~labels =
  let bits = nodes * nodes * List.length labels in
  if bits >= 62 then invalid_arg "Enumerate.count: instance too large";
  1 lsl bits

let no_interrupt () = false

let c_graphs = Obs.Counter.make ~unit_:"graphs" "enumerate.graphs_visited"

(* per-call cost of the brute-force fallback; long right tails here are
   the enumeration blow-ups the typed routes exist to avoid *)
let h_graphs =
  Obs.Histogram.make ~unit_:"graphs" "enumerate.graphs_per_call"

let iter ?(interrupt = no_interrupt) ~nodes ~labels f =
  let pes = Array.of_list (potential_edges ~nodes ~labels) in
  let bits = Array.length pes in
  if bits >= 62 then invalid_arg "Enumerate.iter: instance too large";
  let total = 1 lsl bits in
  let rec go mask =
    if mask >= total || interrupt () then None
    else begin
      Obs.Counter.incr c_graphs;
      let g = Graph.create () in
      for _ = 2 to nodes do
        ignore (Graph.add_node g)
      done;
      for i = 0 to bits - 1 do
        if mask land (1 lsl i) <> 0 then
          let x, k, y = pes.(i) in
          Graph.add_edge g x k y
      done;
      if f g then Some g else go (mask + 1)
    end
  in
  go 0

let find_countermodel ?(interrupt = no_interrupt) ~max_nodes ~labels ~sigma ~phi
    () =
  Obs.Span.with_ "enumerate.find_countermodel"
    ~args:[ ("max_nodes", string_of_int max_nodes) ]
    (fun () ->
      let visited = ref 0 in
      let rec go n =
        if n > max_nodes || interrupt () then None
        else
          match
            iter ~interrupt ~nodes:n ~labels (fun g ->
                incr visited;
                (not (Check.holds g phi)) && Check.holds_all g sigma)
          with
          | Some g -> Some g
          | None -> go (n + 1)
      in
      let r = go 1 in
      if Obs.enabled () then
        Obs.Histogram.observe h_graphs (float_of_int !visited);
      r)
