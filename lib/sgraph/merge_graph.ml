module Label = Pathlang.Label
module Path = Pathlang.Path

let c_unions = Obs.Counter.make ~unit_:"unions" "merge_graph.unions"
let c_splices = Obs.Counter.make ~unit_:"edges moved" "merge_graph.splices"

(* instantaneous live-class count of the most recently touched graph *)
let g_live = Obs.Gauge.make ~unit_:"nodes" "merge_graph.live_nodes"

type t = {
  g : Graph.t;
  mutable parent : int array;
  mutable live : int;
}

let of_graph g =
  let n = Graph.node_count g in
  { g; parent = Array.init (max n 16) Fun.id; live = n }

let graph t = t.g

let rec find t n =
  let p = t.parent.(n) in
  if p = n then n
  else begin
    (* path halving *)
    let gp = t.parent.(p) in
    t.parent.(n) <- gp;
    find t gp
  end

let live_count t = t.live

let grow t n =
  if n >= Array.length t.parent then begin
    let cap = max (2 * Array.length t.parent) (n + 1) in
    let parent = Array.init cap Fun.id in
    Array.blit t.parent 0 parent 0 (Array.length t.parent);
    t.parent <- parent
  end

let add_node t =
  let n = Graph.add_node t.g in
  grow t n;
  t.parent.(n) <- n;
  t.live <- t.live + 1;
  Obs.Gauge.set g_live t.live;
  n

let add_edge t x k y = Graph.add_edge t.g (find t x) k (find t y)

let add_path t x rho y =
  match Path.to_labels rho with
  | [] ->
      if find t x <> find t y then
        invalid_arg "Merge_graph.add_path: empty path between distinct nodes"
  | labels ->
      let rec go src = function
        | [] -> assert false
        | [ k ] -> Graph.add_edge t.g src k (find t y)
        | k :: rest ->
            let mid = add_node t in
            Graph.add_edge t.g src k mid;
            go mid rest
      in
      go (find t x) labels

let incident_labels t n =
  let n = find t n in
  Label.Set.union (Graph.out_labels t.g n) (Graph.in_labels t.g n)

(* Move every edge incident to [victim] onto [target].  Both are
   representatives and [parent.(victim)] already points at [target], so
   the only non-representative endpoint that can appear is [victim]
   itself (self loops). *)
let splice t ~target ~victim =
  Label.Set.iter
    (fun k ->
      List.iter
        (fun y ->
          Graph.remove_edge t.g victim k y;
          let y = if y = victim then target else y in
          Graph.add_edge t.g target k y;
          Obs.Counter.incr c_splices)
        (Graph.succ t.g victim k))
    (Graph.out_labels t.g victim);
  Label.Set.iter
    (fun k ->
      List.iter
        (fun x ->
          Graph.remove_edge t.g x k victim;
          let x = if x = victim then target else x in
          Graph.add_edge t.g x k target;
          Obs.Counter.incr c_splices)
        (Graph.pred t.g victim k))
    (Graph.in_labels t.g victim)

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then None
  else begin
    (* The smaller id absorbs.  Two invariants ride on this choice: the
       root's class is always represented by node 0 (0 is minimal), so
       evaluation from [Graph.root] keeps working on the physical graph;
       and the surviving-id order matches the reference chase's
       renumbering order, which is what makes incremental and reference
       fixpoints isomorphic via the order bijection. *)
    let target = min ra rb and victim = max ra rb in
    t.parent.(victim) <- target;
    t.live <- t.live - 1;
    Obs.Gauge.set g_live t.live;
    Obs.Counter.incr c_unions;
    splice t ~target ~victim;
    Some (target, victim)
  end

(* ------------------------------------------------------------------ *)
(* Serialization: the union-find forest and the physical graph, as a   *)
(* line-oriented text section.  [serialize]/[deserialize] round-trip   *)
(* the exact physical state — parent pointers included — because the   *)
(* chase's repair selection depends on physical node ids: a resumed    *)
(* run must allocate the same fresh ids an uninterrupted run would.    *)
(* ------------------------------------------------------------------ *)

let serialize t =
  let buf = Buffer.create 1024 in
  let n = Graph.node_count t.g in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" n);
  Buffer.add_string buf (Printf.sprintf "live %d\n" t.live);
  Buffer.add_string buf "parent";
  for i = 0 to n - 1 do
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int t.parent.(i))
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "edges %d\n" (Graph.edge_count t.g));
  Graph.iter_edges t.g (fun x k y ->
      Buffer.add_string buf (Printf.sprintf "%d %s %d\n" x (Label.to_string k) y));
  Buffer.contents buf

let deserialize s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf Result.error fmt in
  let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s) in
  let int_field field l =
    match String.split_on_char ' ' l with
    | [ k; v ] when k = field -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> err "bad %s count %S" field v)
    | _ -> err "expected a %S line, got %S" field l
  in
  match lines with
  | nodes_l :: live_l :: parent_l :: edges_l :: edge_lines ->
      let* n = int_field "nodes" nodes_l in
      if n < 1 then err "node count must be at least 1 (the root)"
      else
        let* live = int_field "live" live_l in
        let* parent =
          match String.split_on_char ' ' parent_l with
          | "parent" :: ps when List.length ps = n ->
              let arr = Array.make n 0 in
              let rec fill i = function
                | [] -> Ok arr
                | p :: rest -> (
                    match int_of_string_opt p with
                    | Some v when v >= 0 && v <= i ->
                        arr.(i) <- v;
                        fill (i + 1) rest
                    | Some v ->
                        (* parent.(i) <= i is the min-id absorption
                           invariant; it also guarantees acyclicity. *)
                        err "parent.(%d) = %d violates the min-id invariant" i v
                    | None -> err "bad parent entry %S" p)
              in
              fill 0 ps
          | "parent" :: ps ->
              err "parent array has %d entries, want %d (truncated?)" (List.length ps) n
          | _ -> err "expected a parent line, got %S" parent_l
        in
        let roots = ref 0 in
        Array.iteri (fun i p -> if i = p then incr roots) parent;
        if !roots <> live then
          err "live count %d does not match the %d union-find roots" live !roots
        else
          let* m = int_field "edges" edges_l in
          let listed = List.length edge_lines in
          if listed <> m then err "edge section has %d lines, want %d (truncated?)" listed m
          else begin
            let g = Graph.create () in
            for _ = 2 to n do
              ignore (Graph.add_node g)
            done;
            let rec add i = function
              | [] -> Ok { g; parent; live }
              | l :: rest -> (
                  match String.split_on_char ' ' l with
                  | [ xs; ks; ys ] when ks <> "" -> (
                      match (int_of_string_opt xs, int_of_string_opt ys) with
                      | Some x, Some y when x >= 0 && x < n && y >= 0 && y < n ->
                          if parent.(x) <> x || parent.(y) <> y then
                            err "edge %d: endpoint is not a class representative in %S" i l
                          else begin
                            Graph.add_edge g x (Label.make ks) y;
                            add (i + 1) rest
                          end
                      | _ -> err "edge %d: node id out of range in %S" i l)
                  | _ -> err "edge %d: expected \"src label dst\", got %S" i l)
            in
            add 1 edge_lines
          end
  | _ -> err "truncated merge-graph section (%d lines)" (List.length lines)

let compact t =
  let size = Graph.node_count t.g in
  let dense = Array.make size (-1) in
  let next = ref 0 in
  for n = 0 to size - 1 do
    if find t n = n then begin
      dense.(n) <- !next;
      incr next
    end
  done;
  let h = Graph.create () in
  for _ = 2 to !next do
    ignore (Graph.add_node h)
  done;
  (* all edges connect representatives, see [splice] *)
  Graph.iter_edges t.g (fun x k y -> Graph.add_edge h dense.(x) k dense.(y));
  (h, fun n -> dense.(find t n))
