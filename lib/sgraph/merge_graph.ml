module Label = Pathlang.Label
module Path = Pathlang.Path

let c_unions = Obs.Counter.make ~unit_:"unions" "merge_graph.unions"
let c_splices = Obs.Counter.make ~unit_:"edges moved" "merge_graph.splices"

type t = {
  g : Graph.t;
  mutable parent : int array;
  mutable live : int;
}

let of_graph g =
  let n = Graph.node_count g in
  { g; parent = Array.init (max n 16) Fun.id; live = n }

let graph t = t.g

let rec find t n =
  let p = t.parent.(n) in
  if p = n then n
  else begin
    (* path halving *)
    let gp = t.parent.(p) in
    t.parent.(n) <- gp;
    find t gp
  end

let live_count t = t.live

let grow t n =
  if n >= Array.length t.parent then begin
    let cap = max (2 * Array.length t.parent) (n + 1) in
    let parent = Array.init cap Fun.id in
    Array.blit t.parent 0 parent 0 (Array.length t.parent);
    t.parent <- parent
  end

let add_node t =
  let n = Graph.add_node t.g in
  grow t n;
  t.parent.(n) <- n;
  t.live <- t.live + 1;
  n

let add_edge t x k y = Graph.add_edge t.g (find t x) k (find t y)

let add_path t x rho y =
  match Path.to_labels rho with
  | [] ->
      if find t x <> find t y then
        invalid_arg "Merge_graph.add_path: empty path between distinct nodes"
  | labels ->
      let rec go src = function
        | [] -> assert false
        | [ k ] -> Graph.add_edge t.g src k (find t y)
        | k :: rest ->
            let mid = add_node t in
            Graph.add_edge t.g src k mid;
            go mid rest
      in
      go (find t x) labels

let incident_labels t n =
  let n = find t n in
  Label.Set.union (Graph.out_labels t.g n) (Graph.in_labels t.g n)

(* Move every edge incident to [victim] onto [target].  Both are
   representatives and [parent.(victim)] already points at [target], so
   the only non-representative endpoint that can appear is [victim]
   itself (self loops). *)
let splice t ~target ~victim =
  Label.Set.iter
    (fun k ->
      List.iter
        (fun y ->
          Graph.remove_edge t.g victim k y;
          let y = if y = victim then target else y in
          Graph.add_edge t.g target k y;
          Obs.Counter.incr c_splices)
        (Graph.succ t.g victim k))
    (Graph.out_labels t.g victim);
  Label.Set.iter
    (fun k ->
      List.iter
        (fun x ->
          Graph.remove_edge t.g x k victim;
          let x = if x = victim then target else x in
          Graph.add_edge t.g x k target;
          Obs.Counter.incr c_splices)
        (Graph.pred t.g victim k))
    (Graph.in_labels t.g victim)

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then None
  else begin
    (* The smaller id absorbs.  Two invariants ride on this choice: the
       root's class is always represented by node 0 (0 is minimal), so
       evaluation from [Graph.root] keeps working on the physical graph;
       and the surviving-id order matches the reference chase's
       renumbering order, which is what makes incremental and reference
       fixpoints isomorphic via the order bijection. *)
    let target = min ra rb and victim = max ra rb in
    t.parent.(victim) <- target;
    t.live <- t.live - 1;
    Obs.Counter.incr c_unions;
    splice t ~target ~victim;
    Some (target, victim)
  end

let compact t =
  let size = Graph.node_count t.g in
  let dense = Array.make size (-1) in
  let next = ref 0 in
  for n = 0 to size - 1 do
    if find t n = n then begin
      dense.(n) <- !next;
      incr next
    end
  done;
  let h = Graph.create () in
  for _ = 2 to !next do
    ignore (Graph.add_node h)
  done;
  (* all edges connect representatives, see [splice] *)
  Graph.iter_edges t.g (fun x k y -> Graph.add_edge h dense.(x) k dense.(y));
  (h, fun n -> dense.(find t n))
