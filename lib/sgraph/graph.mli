(** Semistructured databases: rooted, edge-labeled, directed graphs.

    This is the abstraction of Section 3.1: a (finite) structure
    [G = (|G|, r^G, E^G)] over a signature [sigma = (r, E)], depicted as a
    rooted edge-labeled directed graph.  Nodes are dense integers; node 0
    is always the root.  Graphs are mutable (they are built by generators
    and by the chase, which extends them in place); {!copy} gives an
    independent snapshot. *)

type node = int

type t

module Node_set : Set.S with type elt = node

val create : unit -> t
(** A graph with a single node, the root. *)

val root : t -> node

val add_node : t -> node
(** Adds a fresh node and returns it. *)

val add_edge : t -> node -> Pathlang.Label.t -> node -> unit
(** Adds an edge; duplicate edges are ignored.  Both endpoints must be
    existing nodes. *)

val add_path : t -> node -> Pathlang.Path.t -> node -> unit
(** [add_path g x rho y] adds a chain of fresh intermediate nodes so that
    [y] becomes reachable from [x] via [rho].  [rho] must be non-empty
    unless [x = y].
    @raise Invalid_argument if [rho] is empty and [x <> y]. *)

val ensure_path : t -> node -> Pathlang.Path.t -> node
(** [ensure_path g x rho] returns a node reachable from [x] via [rho],
    reusing existing edges greedily and adding fresh nodes for the
    missing suffix. *)

val remove_edge : t -> node -> Pathlang.Label.t -> node -> unit
(** Removes an edge if present (the node itself stays).  The label
    indexes and {!edge_count} are kept exact; {!labels} may keep
    reporting a label whose last edge was removed (it is documented as
    an over-approximation). *)

val has_edge : t -> node -> Pathlang.Label.t -> node -> bool
(** O(1): edge membership is backed by a hash table, not an adjacency
    scan. *)

val succ : t -> node -> Pathlang.Label.t -> node list
val succ_all : t -> node -> (Pathlang.Label.t * node) list
val pred : t -> node -> Pathlang.Label.t -> node list
val out_labels : t -> node -> Pathlang.Label.Set.t

val in_labels : t -> node -> Pathlang.Label.Set.t
(** Labels appearing on incoming edges of the node. *)

val node_count : t -> int
val edge_count : t -> int
val nodes : t -> node list

val iter_edges : t -> (node -> Pathlang.Label.t -> node -> unit) -> unit
(** Iterates every edge without materializing a list; edges are visited
    grouped by source node in increasing node order. *)

val fold_edges : t -> ('a -> node -> Pathlang.Label.t -> node -> 'a) -> 'a -> 'a

val edges : t -> (node * Pathlang.Label.t * node) list
(** Materializes {!iter_edges}; prefer the iterator on hot paths. *)

val labels : t -> Pathlang.Label.Set.t
(** Every label ever added to the graph (an over-approximation after
    {!remove_edge}). *)

val mem_node : t -> node -> bool

val copy : t -> t

val of_edges : (int * string * int) list -> t
(** Builds a graph from raw edges; node ids may be sparse, they are used
    as given (all ids up to the maximum mentioned are created).  Node 0
    is the root and always exists. *)

val union_disjoint : t -> t -> (node -> node)
(** [union_disjoint g h] copies every node and edge of [h] into [g]
    (including [h]'s root, which becomes an ordinary node of [g]) and
    returns the renaming from [h]-nodes to [g]-nodes. *)

val equal : t -> t -> bool
(** Equality of node sets and edge sets (not isomorphism). *)

val pp : Format.formatter -> t -> unit
