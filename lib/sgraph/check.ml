module Constr = Pathlang.Constr
module NS = Graph.Node_set

let c_checks = Obs.Counter.make ~unit_:"checks" "check.constraint_checks"

let c_violations =
  Obs.Counter.make ~unit_:"violations" "check.violations_found"

let violations g c =
  Obs.Counter.incr c_checks;
  let xs = Eval.eval g (Constr.prefix c) in
  let vs =
    NS.fold
      (fun x acc ->
        let ys = Eval.eval_from g x (Constr.lhs c) in
        match Constr.kind c with
        | Constr.Forward ->
            let zs = Eval.eval_from g x (Constr.rhs c) in
            NS.fold
              (fun y acc -> if NS.mem y zs then acc else (x, y) :: acc)
              ys acc
        | Constr.Backward ->
            NS.fold
              (fun y acc ->
                if Eval.holds_between g y (Constr.rhs c) x then acc
                else (x, y) :: acc)
              ys acc)
      xs []
  in
  Obs.Counter.add c_violations (List.length vs);
  vs

exception Found of (Graph.node * Graph.node)

(* First violation in ascending (x, y) order, short-circuiting: the
   chase engines repair one violation per step, so materializing the
   full list is wasted work.  Both the incremental and the reference
   chase use this same selection rule — that shared determinism is what
   makes their runs comparable repair-for-repair. *)
let first_violation g c =
  Obs.Counter.incr c_checks;
  let xs = Eval.eval g (Constr.prefix c) in
  try
    NS.iter
      (fun x ->
        let ys = Eval.eval_from g x (Constr.lhs c) in
        match Constr.kind c with
        | Constr.Forward ->
            let zs = Eval.eval_from g x (Constr.rhs c) in
            NS.iter (fun y -> if not (NS.mem y zs) then raise (Found (x, y))) ys
        | Constr.Backward ->
            NS.iter
              (fun y ->
                if not (Eval.holds_between g y (Constr.rhs c) x) then
                  raise (Found (x, y)))
              ys)
      xs;
    None
  with Found v -> Some v

let holds g c =
  Obs.Counter.incr c_checks;
  let xs = Eval.eval g (Constr.prefix c) in
  NS.for_all
    (fun x ->
      let ys = Eval.eval_from g x (Constr.lhs c) in
      match Constr.kind c with
      | Constr.Forward ->
          let zs = Eval.eval_from g x (Constr.rhs c) in
          NS.subset ys zs
      | Constr.Backward ->
          NS.for_all (fun y -> Eval.holds_between g y (Constr.rhs c) x) ys)
    xs

let holds_all g cs = List.for_all (holds g) cs
let first_violated g cs = List.find_opt (fun c -> not (holds g c)) cs
