(* Graph.of_edges allocates every node up to the largest id mentioned, so
   a one-line file saying "0 a 4611686018427387903" would loop for hours;
   cap the ids at something a text file could plausibly mean. *)
let max_node_id = 1_000_000

(* Truncated or mangled input (e.g. injected by [Fault.mangle]) must
   surface as [Error] with a line position, never as an escaping
   [End_of_file]/[Invalid_argument]; the final catch-all below is the
   hardening backstop for whatever a cut-off byte stream produces. *)
let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec parse n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let t = String.trim line in
        if t = "" || t.[0] = '#' then parse (n + 1) acc rest
        else
          match String.split_on_char ' ' t |> List.filter (fun x -> x <> "") with
          | [ src; label; dst ] -> (
              match (int_of_string_opt src, int_of_string_opt dst) with
              | Some x, Some y
                when x >= 0 && y >= 0 && x <= max_node_id && y <= max_node_id ->
                  parse (n + 1) ((x, label, y) :: acc) rest
              | Some x, Some y when x >= 0 && y >= 0 ->
                  Error
                    (Printf.sprintf "line %d: node id exceeds the cap of %d" n
                       max_node_id)
              | _ -> Error (Printf.sprintf "line %d: bad node id" n))
          | _ -> Error (Printf.sprintf "line %d: expected 'src label dst'" n))
  in
  match parse 1 [] lines with
  | Error _ as e -> e
  | Ok edges -> (
      match Graph.of_edges edges with
      | g -> Ok g
      | exception Invalid_argument m -> Error m)
  | exception (Invalid_argument m | Failure m) ->
      Error (Printf.sprintf "line 1-%d: truncated or malformed graph file (%s)"
               (List.length lines) m)
  | exception End_of_file ->
      Error
        (Printf.sprintf "line %d: unexpected end of input (truncated graph file)"
           (List.length lines))

let to_string g =
  let buf = Buffer.create 256 in
  Graph.iter_edges g (fun x k y ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s %d\n" x (Pathlang.Label.to_string k) y));
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error m

let save path g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string g))
