(** Model checking P_c constraints over finite graphs: the satisfaction
    relation [G |= phi] of Section 2.2. *)

val holds : Graph.t -> Pathlang.Constr.t -> bool
(** [holds g phi] decides [G |= phi] directly from Definition 2.1: for
    every [x] with [alpha(r, x)] and every [y] with [beta(x, y)], check
    [gamma(x, y)] (forward) or [gamma(y, x)] (backward). *)

val holds_all : Graph.t -> Pathlang.Constr.t list -> bool

val violations :
  Graph.t -> Pathlang.Constr.t -> (Graph.node * Graph.node) list
(** The witness pairs [(x, y)] at which the constraint fails; empty iff
    the constraint holds. *)

val first_violation :
  Graph.t -> Pathlang.Constr.t -> (Graph.node * Graph.node) option
(** The ascending-order-first witness pair, short-circuiting as soon as
    one is found.  This is the chase's repair-selection primitive; both
    chase engines share it so their repair sequences coincide. *)

val first_violated :
  Graph.t -> Pathlang.Constr.t list -> Pathlang.Constr.t option
