(** Exhaustive enumeration of small rooted graphs.

    Used for brute-force refutation of finite implication on tiny
    signatures: the number of graphs is [2^(L * n^2)] for [n] nodes and
    [L] labels, so callers must keep [n] and [L] very small (the tests
    use [n <= 3], [L <= 2]).

    Both entry points take a cooperative [?interrupt] hook, polled once
    per candidate graph; when it returns [true] the search stops early
    and reports [None].  [Core.Engine] wires its deadline/cancellation
    checks into this hook, so enumeration under a governed solver can
    never outlive its wall-clock budget.

    Both entry points also take an optional [?pool]: with a [Par] pool
    of more than one domain, the mask space is split into contiguous
    ascending chunks and searched concurrently, with the least-index
    (hence least-mask) hit winning — the witness, and therefore the
    verdict, is byte-identical to the sequential scan's.  The
    [?interrupt] hook is then polled from every worker, so it must be
    domain-safe ([Engine.interrupted] is). *)

val iter :
  ?interrupt:(unit -> bool) ->
  ?pool:Par.t ->
  nodes:int ->
  labels:Pathlang.Label.t list ->
  (Graph.t -> bool) ->
  Graph.t option
(** [iter ~nodes ~labels f] enumerates every graph with exactly [nodes]
    nodes (node 0 the root) over the label set, calling [f] on each;
    stops and returns the minimal-mask graph on which [f] returns
    [true] (under a pool, [f] must be thread-safe: pure up to obs
    metrics).
    @raise Invalid_argument when the instance has 62 or more potential
    edges (the space does not fit an int bitmask). *)

val find_countermodel :
  ?interrupt:(unit -> bool) ->
  ?pool:Par.t ->
  max_nodes:int ->
  labels:Pathlang.Label.t list ->
  sigma:Pathlang.Constr.t list ->
  phi:Pathlang.Constr.t ->
  unit ->
  Graph.t option
(** Searches all graphs of size 1..[max_nodes] for a finite model of
    [Sigma /\ not phi]; [Some g] refutes [Sigma |=_f phi].  (The
    trailing [unit] erases the optionals when omitted.)  Node counts
    whose space overflows {!count} end the search with [None] rather
    than looping on an astronomically sized space. *)

val count : nodes:int -> labels:Pathlang.Label.t list -> int option
(** Number of graphs that {!iter} would enumerate: [Some (2^(L*n^2))],
    or [None] when that exceeds 62 bits (the bound {!iter} rejects).
    The exponent itself is computed overflow-safely, so absurd [nodes]
    values return [None] instead of a wrapped nonsense count. *)
