(** Exhaustive enumeration of small rooted graphs.

    Used for brute-force refutation of finite implication on tiny
    signatures: the number of graphs is [2^(L * n^2)] for [n] nodes and
    [L] labels, so callers must keep [n] and [L] very small (the tests
    use [n <= 3], [L <= 2]).

    Both entry points take a cooperative [?interrupt] hook, polled once
    per candidate graph; when it returns [true] the search stops early
    and reports [None].  [Core.Engine] wires its deadline/cancellation
    checks into this hook, so enumeration under a governed solver can
    never outlive its wall-clock budget. *)

val iter :
  ?interrupt:(unit -> bool) ->
  nodes:int ->
  labels:Pathlang.Label.t list ->
  (Graph.t -> bool) ->
  Graph.t option
(** [iter ~nodes ~labels f] enumerates every graph with exactly [nodes]
    nodes (node 0 the root) over the label set, calling [f] on each;
    stops and returns the first graph on which [f] returns [true]. *)

val find_countermodel :
  ?interrupt:(unit -> bool) ->
  max_nodes:int ->
  labels:Pathlang.Label.t list ->
  sigma:Pathlang.Constr.t list ->
  phi:Pathlang.Constr.t ->
  unit ->
  Graph.t option
(** Searches all graphs of size 1..[max_nodes] for a finite model of
    [Sigma /\ not phi]; [Some g] refutes [Sigma |=_f phi].  (The
    trailing [unit] erases [?interrupt] when omitted.) *)

val count : nodes:int -> labels:Pathlang.Label.t list -> int
(** Number of graphs that {!iter} would enumerate. *)
