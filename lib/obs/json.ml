type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* encode a Unicode scalar value as UTF-8 bytes *)
  let utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "truncated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    (* high surrogate: consume the paired low surrogate *)
                    if cp >= 0xD800 && cp <= 0xDBFF
                       && !pos + 1 < n
                       && s.[!pos] = '\\'
                       && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                      else fail "invalid low surrogate"
                    end
                    else cp
                  in
                  utf8 buf cp
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              go ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (off, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" off msg)

(* --- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_list = function List l -> Some l | _ -> None
let as_obj = function Obj fields -> Some fields | _ -> None
