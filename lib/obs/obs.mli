(** Zero-dependency observability core: counters, histograms, and
    nested spans over a monotonic clock.

    Every decision procedure in this repository carries a complexity
    claim from the paper's Table 1 (PTIME local-extent checking, the
    cubic typed-M procedure of Theorems 4.2/4.9); this module is how
    those claims become measurable.  Instrumented modules create their
    counters and span names once at module initialization; the hot
    paths then pay a single flag test per operation while disabled
    ([incr] compiles to a load, a branch and a store), so the default
    state is a near-zero-cost no-op.

    The layer is process-global and single-threaded, matching the
    solvers it instruments.  Enable metrics with {!enable}, buffer
    span events for export with {!enable_tracing}, and read results
    through {!Stats} (aggregates) or {!Trace} (the event stream, as
    Chrome [trace_event] JSON or JSON-lines). *)

module Json = Json

val enable : unit -> unit
(** Turn on counters, histograms and span aggregation. *)

val enable_tracing : unit -> unit
(** Additionally buffer every span begin/end and instant event for
    {!Trace} export.  Implies {!enable}. *)

val disable : unit -> unit
(** Back to the no-op default (buffered data is kept until {!reset}). *)

val enabled : unit -> bool
val tracing : unit -> bool

val reset : unit -> unit
(** Zero every counter and histogram, drop all buffered events and
    aggregates, abandon any open spans, and restart the trace clock.
    Does not change the enabled/tracing flags. *)

val now_ns : unit -> int64
(** The monotonic clock (nanoseconds; only differences mean anything). *)

(** Named monotonic counters.  [make] registers the counter in a
    process-global registry keyed by name; calling it twice with the
    same name returns the same counter. *)
module Counter : sig
  type t

  val make : ?unit_:string -> string -> t
  (** [unit_] is documentation carried into stats output (e.g.
      ["steps"], ["nodes"], ["rules"]). *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** [add] with a negative value is ignored: counters only go up. *)

  val set_max : t -> int -> unit
  (** High-water-mark semantics: the counter keeps the max value ever
      offered (e.g. peak frontier size, peak model size). *)

  val value : t -> int
  val name : t -> string

  val snapshot : unit -> (string * int) list
  (** All registered counters with non-zero values, sorted by name. *)
end

(** Named histograms of [float] observations.  Tracks count, sum, min,
    max exactly and percentiles over the first 4096 samples. *)
module Histogram : sig
  type t

  val make : ?unit_:string -> string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val percentile : t -> float -> float
  (** [percentile h 0.5] is the median of the retained samples; [nan]
      when empty. *)
end

(** Nested spans.  Spans form a stack per process (the solvers are
    single-threaded); [stop]ping a span that is not innermost first
    auto-closes the spans opened inside it, so the exported trace is
    always properly nested — no orphan parents. *)
module Span : sig
  type t

  val null : t
  (** The disabled span; stopping it is a no-op.  [start] returns it
      whenever the layer is disabled. *)

  val start : ?args:(string * string) list -> string -> t

  val stop : ?args:(string * string) list -> t -> unit
  (** Extra [args] given at stop time are merged into the span's end
      event.  Stopping a span that was already stopped is a no-op. *)

  val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a span; the span is closed even if
      [f] raises. *)

  val event : ?args:(string * string) list -> string -> unit
  (** An instant event (Chrome phase ["i"]), e.g. one escalation round
      or a budget trip. *)

  val depth : unit -> int
  (** Number of currently open spans (0 when balanced). *)
end

(** The buffered event stream (populated only under {!enable_tracing}). *)
module Trace : sig
  type phase = Begin | End | Instant

  type event = {
    name : string;
    ph : phase;
    ts_ns : int64;  (** relative to the trace epoch (the last {!reset}) *)
    args : (string * string) list;
  }

  val events : unit -> event list
  (** In emission order.  The buffer is capped (2^18 events); beyond
      that, events are dropped and counted. *)

  val dropped : unit -> int

  val to_chrome_json : unit -> string
  (** A complete Chrome [trace_event]-format document (JSON object with
      a [traceEvents] array of B/E/i events, microsecond timestamps),
      loadable in [chrome://tracing] and Perfetto.  Spans still open at
      export time are closed synthetically at the current clock so the
      file is always well-formed. *)

  val to_jsonl : unit -> string
  (** One JSON object per event per line, nanosecond timestamps. *)

  val write_chrome : string -> unit
  (** [to_chrome_json] to a file. *)
end

(** Aggregated statistics: every counter, histogram, and per-span-name
    totals (count, total wall-clock, self time = total minus time spent
    in child spans). *)
module Stats : sig
  type span_stat = { count : int; total_ns : int64; self_ns : int64 }

  val spans : unit -> (string * span_stat) list
  (** Sorted by total time, descending. *)

  val to_json : unit -> Json.t
  val to_text : unit -> string
  (** Human-readable tables: counters, span attribution (count, total,
      self, share of the busiest root span), histograms. *)
end
