(** Domain-safe observability core: sharded counters, histograms and
    gauges, labeled metric families, nested spans over a monotonic
    clock, an OpenMetrics renderer, a decision audit journal and
    folded-stack export.

    Every decision procedure in this repository carries a complexity
    claim from the paper's Table 1 (PTIME local-extent checking, the
    cubic typed-M procedure of Theorems 4.2/4.9); this module is how
    those claims become measurable.  Instrumented modules create their
    counters and span names once at module initialization; the hot
    paths then pay a single flag test per operation while disabled
    ([incr] compiles to a load and a branch), so the default state is
    a near-zero-cost no-op.

    {2 Domain safety}

    Counters and histograms are sharded: each metric owns one
    accumulator cell per shard slot, a domain writes only its own slot
    (an unsynchronized single-word store — it cannot tear under the
    OCaml memory model), and every read merges all slots.  Slots come
    from a mutex-guarded free list, are bound to a domain lazily via
    domain-local storage and are recycled at domain exit.  Merged
    totals are {e exact} once the writing domains have been joined
    ([Domain.join] establishes happens-before).  Beyond
    [64] simultaneous domains, latecomers share the last slot and
    their increments may race — a documented degradation, never a
    crash.  Spans, aggregates and trace buffers are fully per-domain;
    a span must be stopped on the domain that started it.  Gauges are
    plain last-writer-wins cells (instantaneous readings; exactness is
    a counter/histogram property).

    Enable metrics with {!enable}, buffer span events for export with
    {!enable_tracing}, and read results through {!Stats} (aggregates),
    {!Trace} (the event stream, as Chrome [trace_event] JSON,
    JSON-lines or folded stacks), {!Openmetrics} (Prometheus text
    exposition) or {!Audit} (the per-decision JSONL journal). *)

module Json = Json

val enable : unit -> unit
(** Turn on counters, histograms, gauges and span aggregation. *)

val enable_tracing : unit -> unit
(** Additionally buffer every span begin/end and instant event for
    {!Trace} export.  Implies {!enable}. *)

val disable : unit -> unit
(** Back to the no-op default (buffered data is kept until {!reset}). *)

val enabled : unit -> bool
val tracing : unit -> bool

val reset : unit -> unit
(** Zero every counter, gauge and histogram, drop all buffered events,
    aggregates and audit records, abandon any open spans, and restart
    the trace clock.  Does not change the enabled/tracing flags.  Only
    meaningful while no other domain is writing metrics. *)

val now_ns : unit -> int64
(** The monotonic clock (nanoseconds; only differences mean anything). *)

(** Named monotonic counters.  [make] registers the counter in a
    process-global registry keyed by name (plus labels); calling it
    twice with the same name returns the same counter.  Writes go to
    the calling domain's shard; reads merge shards ([set_max] merges
    by max, everything else by sum). *)
module Counter : sig
  type t

  val make : ?unit_:string -> ?labels:(string * string) list -> string -> t
  (** [unit_] is documentation carried into stats output (e.g.
      ["steps"], ["nodes"], ["rules"]).  [labels] attach the counter to
      a labeled family: [make ~labels:[("site", "io")] "fault.hits"]
      registers as [fault.hits{site="io"}]. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** [add] with a negative value is ignored: counters only go up. *)

  val set_max : t -> int -> unit
  (** High-water-mark semantics: the counter keeps the max value ever
      offered (e.g. peak frontier size, peak model size), per shard;
      reads merge shards by max. *)

  val value : t -> int
  (** Merged over all shards. *)

  val name : t -> string
  (** The registry key: base name plus rendered labels. *)

  val base : t -> string
  val labels : t -> (string * string) list
  val unit_ : t -> string

  val snapshot : unit -> (string * int) list
  (** All registered counters with non-zero merged values, sorted by
      name. *)

  (** A labeled family: one logical metric keyed by the value of a
      single label, e.g. [decision.route{route=...}]. *)
  type family

  val family : ?unit_:string -> label:string -> string -> family
  val tag : family -> string -> t
  (** [tag fam v] is the member counter for label value [v] (memoized;
      hot paths should hoist the result). *)
end

(** Instantaneous readings (live node counts, worklist depth):
    last-writer-wins cells with no shard merge. *)
module Gauge : sig
  type t

  val make : ?unit_:string -> ?labels:(string * string) list -> string -> t
  val set : t -> int -> unit
  val add : t -> int -> unit
  val sub : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val base : t -> string
  val labels : t -> (string * string) list
  val unit_ : t -> string

  val snapshot : unit -> (string * int) list
  (** All gauges with non-zero values, sorted by name. *)
end

(** Named histograms of [float] observations, sharded like counters.
    Tracks count, sum, min, max and explicit bucket counts exactly;
    percentiles come from a capped per-shard reservoir (512 samples
    per shard, first-come). *)
module Histogram : sig
  type t

  val make :
    ?unit_:string ->
    ?labels:(string * string) list ->
    ?buckets:float array ->
    string ->
    t
  (** [buckets] are upper bounds (ascending); observations above the
      last bound land in an implicit [+Inf] bucket.  Default: decades
      from 1 to 1e9. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_ : t -> float
  val max_ : t -> float

  val buckets : t -> (float * int) list
  (** Merged per-bound counts (non-cumulative), ending with the
      [+Inf] (= [infinity]) overflow bucket; the counts always sum to
      {!count}. *)

  val percentile : t -> float -> float
  (** [percentile h 0.5] is the median of the retained samples; [nan]
      when empty. *)

  val name : t -> string
  val base : t -> string
  val labels : t -> (string * string) list
  val unit_ : t -> string

  type family

  val family :
    ?unit_:string -> ?buckets:float array -> label:string -> string -> family

  val tag : family -> string -> t
end

(** Nested spans.  Spans form a stack per domain; [stop]ping a span
    that is not innermost first auto-closes the spans opened inside
    it, so the exported trace is always properly nested — no orphan
    parents.  A span must be stopped on the domain that started it. *)
module Span : sig
  type t

  val null : t
  (** The disabled span; stopping it is a no-op.  [start] returns it
      whenever the layer is disabled. *)

  val start : ?args:(string * string) list -> string -> t

  val stop : ?args:(string * string) list -> t -> unit
  (** Extra [args] given at stop time are merged into the span's end
      event.  Stopping a span that was already stopped is a no-op. *)

  val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a span; the span is closed even if
      [f] raises. *)

  val event : ?args:(string * string) list -> string -> unit
  (** An instant event (Chrome phase ["i"]), e.g. one escalation round
      or a budget trip. *)

  val depth : unit -> int
  (** Number of currently open spans on the calling domain (0 when
      balanced). *)
end

(** The buffered event stream (populated only under {!enable_tracing}). *)
module Trace : sig
  type phase = Begin | End | Instant

  type event = {
    name : string;
    ph : phase;
    ts_ns : int64;  (** relative to the trace epoch (the last {!reset}) *)
    tid : int;  (** originating domain (1 = first domain to instrument) *)
    args : (string * string) list;
  }

  val events : unit -> event list
  (** Grouped by originating domain, each group in emission order.
      Each per-domain buffer is capped (2^18 events); beyond that,
      events are dropped and counted. *)

  val dropped : unit -> int

  val to_chrome_json : unit -> string
  (** A complete Chrome [trace_event]-format document (JSON object with
      a [traceEvents] array of B/E/i events, microsecond timestamps,
      one [tid] per domain), loadable in [chrome://tracing] and
      Perfetto.  Spans still open at export time are closed
      synthetically at the current clock so the file is always
      well-formed. *)

  val to_jsonl : unit -> string
  (** One JSON object per event per line, nanosecond timestamps. *)

  val write_chrome : string -> unit
  (** [to_chrome_json] to a file. *)

  val to_folded : unit -> string
  (** Folded stacks for flamegraph.pl / inferno: one line per distinct
      span stack, [root;child;leaf <self-nanoseconds>], sorted.  Spans
      still open at export are closed synthetically; each domain's
      stream is folded independently. *)

  val write_folded : string -> unit
  (** [to_folded] to a file. *)
end

(** The decision audit journal: one structured record per decision
    (and per snapshot park/resume), giving per-request provenance that
    aggregate counters cannot.  Switched independently of the metrics
    layer; the buffer is mutex-guarded and capped (2^16 records). *)
module Audit : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool

  val emit : ?fields:(string * Json.t) list -> string -> unit
  (** [emit ~fields event] appends a record
      [{"seq": n, "ts_ns": t, "event": event, ...fields}].  No-op while
      disabled. *)

  val records : unit -> Json.t list
  (** In emission order. *)

  val dropped : unit -> int

  val to_jsonl : unit -> string
  (** One record per line; [""] when empty. *)

  val write : string -> unit

  val validate : Json.t -> (unit, string) result
  (** Schema check: the [seq]/[ts_ns]/[event] envelope on every record;
      ["decision"] records must also carry string [route] and
      [verdict] fields. *)
end

(** Aggregated statistics: every counter, gauge, histogram, and
    per-span-name totals (count, total wall-clock, self time = total
    minus time spent in child spans), merged over all domains. *)
module Stats : sig
  type span_stat = { count : int; total_ns : int64; self_ns : int64 }

  val spans : unit -> (string * span_stat) list
  (** Sorted by total time, descending. *)

  val to_json : unit -> Json.t
  val to_text : unit -> string
  (** Human-readable tables: counters, gauges, span attribution (count,
      total, self, share of the busiest root span), histograms. *)
end

(** OpenMetrics/Prometheus text exposition of the whole registry:
    counters as [pathcons_<name>_total] (labels preserved), gauges
    verbatim, histograms with cumulative [_bucket{le="..."}] series
    plus [_sum]/[_count], span aggregates as derived counter families
    ([pathcons_span_calls_total{span="..."}] etc.), terminated by
    [# EOF].  Metric names are sanitized (dots become underscores). *)
module Openmetrics : sig
  val render : unit -> string
  val write : string -> unit
end
