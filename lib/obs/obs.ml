module Json = Json

let now_ns = Monotonic_clock.now

(* Global switches.  [on] gates all bookkeeping; [trace_on] additionally
   buffers begin/end/instant events for export.  Both default to off so
   the instrumented hot paths pay one load+branch. *)
let on = ref false
let trace_on = ref false
let epoch = ref (now_ns ())

let enable () = on := true

let enable_tracing () =
  on := true;
  trace_on := true

let disable () =
  on := false;
  trace_on := false

let enabled () = !on
let tracing () = !trace_on

(* --- counters --------------------------------------------------------- *)

module Counter = struct
  type t = { cname : string; cunit : string; mutable v : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make ?(unit_ = "") cname =
    match Hashtbl.find_opt registry cname with
    | Some c -> c
    | None ->
        let c = { cname; cunit = unit_; v = 0 } in
        Hashtbl.add registry cname c;
        c

  let[@inline] incr c = if !on then c.v <- c.v + 1
  let[@inline] add c n = if !on && n > 0 then c.v <- c.v + n
  let[@inline] set_max c n = if !on && n > c.v then c.v <- n
  let value c = c.v
  let name c = c.cname
  let unit_ c = c.cunit

  let snapshot () =
    Hashtbl.fold (fun _ c acc -> if c.v <> 0 then c :: acc else acc) registry []
    |> List.sort (fun a b -> compare a.cname b.cname)
    |> List.map (fun c -> (c.cname, c.v))

  let all () =
    Hashtbl.fold (fun _ c acc -> if c.v <> 0 then c :: acc else acc) registry []
    |> List.sort (fun a b -> compare a.cname b.cname)

  let reset () = Hashtbl.iter (fun _ c -> c.v <- 0) registry
end

(* --- histograms ------------------------------------------------------- *)

module Histogram = struct
  let max_samples = 4096

  type t = {
    hname : string;
    hunit : string;
    mutable hcount : int;
    mutable hsum : float;
    mutable hmin : float;
    mutable hmax : float;
    samples : float array;  (* first [max_samples] observations *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(unit_ = "") hname =
    match Hashtbl.find_opt registry hname with
    | Some h -> h
    | None ->
        let h =
          {
            hname;
            hunit = unit_;
            hcount = 0;
            hsum = 0.;
            hmin = infinity;
            hmax = neg_infinity;
            samples = Array.make max_samples 0.;
          }
        in
        Hashtbl.add registry hname h;
        h

  let observe h x =
    if !on then begin
      if h.hcount < max_samples then h.samples.(h.hcount) <- x;
      h.hcount <- h.hcount + 1;
      h.hsum <- h.hsum +. x;
      if x < h.hmin then h.hmin <- x;
      if x > h.hmax then h.hmax <- x
    end

  let count h = h.hcount
  let sum h = h.hsum
  let mean h = if h.hcount = 0 then nan else h.hsum /. float_of_int h.hcount

  let percentile h p =
    let n = min h.hcount max_samples in
    if n = 0 then nan
    else begin
      let a = Array.sub h.samples 0 n in
      Array.sort compare a;
      let idx = int_of_float (p *. float_of_int (n - 1)) in
      a.(max 0 (min (n - 1) idx))
    end

  let all () =
    Hashtbl.fold (fun _ h acc -> if h.hcount > 0 then h :: acc else acc)
      registry []
    |> List.sort (fun a b -> compare a.hname b.hname)

  let reset () =
    Hashtbl.iter
      (fun _ h ->
        h.hcount <- 0;
        h.hsum <- 0.;
        h.hmin <- infinity;
        h.hmax <- neg_infinity)
      registry
end

(* --- trace buffer ----------------------------------------------------- *)

module Trace_buffer = struct
  type phase = Begin | End | Instant

  type event = {
    name : string;
    ph : phase;
    ts_ns : int64;
    args : (string * string) list;
  }

  let capacity = 1 lsl 18
  let buf : event option array ref = ref (Array.make 1024 None)
  let len = ref 0
  let dropped = ref 0

  let push e =
    if !len >= capacity then incr dropped
    else begin
      if !len >= Array.length !buf then begin
        let bigger =
          Array.make (min capacity (2 * Array.length !buf)) None
        in
        Array.blit !buf 0 bigger 0 !len;
        buf := bigger
      end;
      !buf.(!len) <- Some e;
      incr len
    end

  let events () =
    List.init !len (fun i ->
        match !buf.(i) with Some e -> e | None -> assert false)

  let reset () =
    buf := Array.make 1024 None;
    len := 0;
    dropped := 0
end

(* --- span stack and aggregates ---------------------------------------- *)

type span_agg = {
  mutable acount : int;
  mutable atotal_ns : int64;
  mutable aself_ns : int64;
}

let span_aggs : (string, span_agg) Hashtbl.t = Hashtbl.create 64

let agg_of name =
  match Hashtbl.find_opt span_aggs name with
  | Some a -> a
  | None ->
      let a = { acount = 0; atotal_ns = 0L; aself_ns = 0L } in
      Hashtbl.add span_aggs name a;
      a

module Span = struct
  type frame = {
    sname : string;
    start_ns : int64;
    mutable child_ns : int64;
    mutable closed : bool;
  }

  type t = frame option

  let null = None
  let stack : frame list ref = ref []
  let depth () = List.length !stack

  let rel ts = Int64.sub ts !epoch

  let start ?(args = []) sname =
    if not !on then None
    else begin
      let ts = now_ns () in
      if !trace_on then
        Trace_buffer.push
          { Trace_buffer.name = sname; ph = Begin; ts_ns = rel ts; args };
      let f = { sname; start_ns = ts; child_ns = 0L; closed = false } in
      stack := f :: !stack;
      Some f
    end

  (* Close [f]: emit the end event, fold the duration into the per-name
     aggregate, and charge it to the parent's child time. *)
  let close ?(args = []) f =
    if not f.closed then begin
      f.closed <- true;
      let ts = now_ns () in
      let dur = Int64.sub ts f.start_ns in
      if !trace_on then
        Trace_buffer.push
          { Trace_buffer.name = f.sname; ph = End; ts_ns = rel ts; args };
      let a = agg_of f.sname in
      a.acount <- a.acount + 1;
      a.atotal_ns <- Int64.add a.atotal_ns dur;
      a.aself_ns <- Int64.add a.aself_ns (Int64.sub dur f.child_ns);
      match !stack with
      | parent :: _ -> parent.child_ns <- Int64.add parent.child_ns dur
      | [] -> ()
    end

  let stop ?(args = []) t =
    match t with
    | None -> ()
    | Some f ->
        if (not f.closed) && List.memq f !stack then begin
          (* auto-close anything opened inside [f] that was left open,
             innermost first, so the trace stays properly nested *)
          let rec unwind () =
            match !stack with
            | top :: rest ->
                stack := rest;
                if top == f then close ~args f
                else begin
                  close top;
                  unwind ()
                end
            | [] -> ()
          in
          unwind ()
        end

  (* the disabled path must not pay the Fun.protect closure + handler *)
  let with_ ?args sname f =
    if not !on then f ()
    else
      let s = start ?args sname in
      Fun.protect ~finally:(fun () -> stop s) f

  let event ?(args = []) name =
    if !on && !trace_on then
      Trace_buffer.push
        { Trace_buffer.name; ph = Instant; ts_ns = rel (now_ns ()); args }
end

let reset () =
  Counter.reset ();
  Histogram.reset ();
  Trace_buffer.reset ();
  Hashtbl.reset span_aggs;
  Span.stack := [];
  epoch := now_ns ()

(* --- trace export ------------------------------------------------------ *)

module Trace = struct
  type phase = Trace_buffer.phase = Begin | End | Instant
  type event = Trace_buffer.event = {
    name : string;
    ph : phase;
    ts_ns : int64;
    args : (string * string) list;
  }

  let events = Trace_buffer.events
  let dropped () = !Trace_buffer.dropped

  (* Events for the still-open spans, innermost last opened first, so a
     partial trace (e.g. after a cancellation) remains balanced. *)
  let synthetic_ends () =
    let ts = Int64.sub (now_ns ()) !epoch in
    List.map
      (fun (f : Span.frame) ->
        {
          name = f.Span.sname;
          ph = End;
          ts_ns = ts;
          args = [ ("synthetic", "open-at-export") ];
        })
      !Span.stack

  let json_of_event e =
    let ph, extra =
      match e.ph with
      | Begin -> ("B", [])
      | End -> ("E", [])
      | Instant -> ("i", [ ("s", Json.String "t") ])
    in
    Json.Obj
      ([
         ("name", Json.String e.name);
         ("cat", Json.String "pathcons");
         ("ph", Json.String ph);
         (* Chrome's ts unit is microseconds *)
         ("ts", Json.Float (Int64.to_float e.ts_ns /. 1e3));
         ("pid", Json.Int 1);
         ("tid", Json.Int 1);
       ]
      @ extra
      @
      match e.args with
      | [] -> []
      | args ->
          [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

  let to_chrome_json () =
    Json.to_string
      (Json.Obj
         [
           ( "traceEvents",
             Json.List (List.map json_of_event (events () @ synthetic_ends ()))
           );
           ("displayTimeUnit", Json.String "ns");
           ("otherData", Json.Obj [ ("producer", Json.String "pathcons/obs") ]);
         ])

  let jsonl_of_event e =
    Json.to_string
      (Json.Obj
         ([
            ("name", Json.String e.name);
            ( "ph",
              Json.String
                (match e.ph with Begin -> "B" | End -> "E" | Instant -> "i") );
            ("ts_ns", Json.Int (Int64.to_int e.ts_ns));
          ]
         @
         match e.args with
         | [] -> []
         | args ->
             [
               ( "args",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args) );
             ]))

  let to_jsonl () =
    String.concat "\n" (List.map jsonl_of_event (events ())) ^ "\n"

  let write_chrome path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_chrome_json ());
        output_string oc "\n")
end

(* --- stats ------------------------------------------------------------- *)

module Stats = struct
  type span_stat = { count : int; total_ns : int64; self_ns : int64 }

  let spans () =
    Hashtbl.fold
      (fun name (a : span_agg) acc ->
        ( name,
          { count = a.acount; total_ns = a.atotal_ns; self_ns = a.aself_ns } )
        :: acc)
      span_aggs []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b.total_ns a.total_ns)

  let pp_ns ns =
    if Float.is_nan ns then "n/a"
    else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)

  let to_json () =
    let counters =
      Json.Obj
        (List.map
           (fun c -> (Counter.name c, Json.Int (Counter.value c)))
           (Counter.all ()))
    in
    let histograms =
      Json.Obj
        (List.map
           (fun (h : Histogram.t) ->
             ( h.Histogram.hname,
               Json.Obj
                 [
                   ("unit", Json.String h.Histogram.hunit);
                   ("count", Json.Int h.Histogram.hcount);
                   ("sum", Json.Float h.Histogram.hsum);
                   ("min", Json.Float h.Histogram.hmin);
                   ("max", Json.Float h.Histogram.hmax);
                   ("mean", Json.Float (Histogram.mean h));
                   ("p50", Json.Float (Histogram.percentile h 0.5));
                   ("p90", Json.Float (Histogram.percentile h 0.9));
                 ] ))
           (Histogram.all ()))
    in
    let spans_json =
      Json.Obj
        (List.map
           (fun (name, s) ->
             ( name,
               Json.Obj
                 [
                   ("count", Json.Int s.count);
                   ("total_ns", Json.Int (Int64.to_int s.total_ns));
                   ("self_ns", Json.Int (Int64.to_int s.self_ns));
                 ] ))
           (spans ()))
    in
    Json.Obj
      [
        ("counters", counters);
        ("spans", spans_json);
        ("histograms", histograms);
        ("dropped_events", Json.Int (Trace.dropped ()));
      ]

  let to_text () =
    let b = Buffer.create 1024 in
    let counters = Counter.all () in
    if counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf "  %-42s %12d%s\n" (Counter.name c)
               (Counter.value c)
               (if Counter.unit_ c = "" then ""
                else " " ^ Counter.unit_ c)))
        counters
    end;
    let sps = spans () in
    if sps <> [] then begin
      (* share is relative to the busiest span (normally the root) *)
      let wall =
        List.fold_left
          (fun acc (_, s) -> Int64.max acc s.total_ns)
          1L sps
      in
      Buffer.add_string b "spans:\n";
      Buffer.add_string b
        (Printf.sprintf "  %-34s %8s %12s %12s %7s\n" "name" "count" "total"
           "self" "share");
      List.iter
        (fun (name, s) ->
          Buffer.add_string b
            (Printf.sprintf "  %-34s %8d %12s %12s %6.1f%%\n" name s.count
               (pp_ns (Int64.to_float s.total_ns))
               (pp_ns (Int64.to_float s.self_ns))
               (100. *. Int64.to_float s.total_ns /. Int64.to_float wall)))
        sps
    end;
    let hs = Histogram.all () in
    if hs <> [] then begin
      Buffer.add_string b "histograms:\n";
      List.iter
        (fun (h : Histogram.t) ->
          Buffer.add_string b
            (Printf.sprintf
               "  %-34s count %d  mean %.1f  p50 %.1f  p90 %.1f  max %.1f%s\n"
               h.Histogram.hname h.Histogram.hcount (Histogram.mean h)
               (Histogram.percentile h 0.5)
               (Histogram.percentile h 0.9)
               h.Histogram.hmax
               (if h.Histogram.hunit = "" then ""
                else " (" ^ h.Histogram.hunit ^ ")")))
        hs
    end;
    if Trace.dropped () > 0 then
      Buffer.add_string b
        (Printf.sprintf "trace buffer: %d event(s) dropped (capacity %d)\n"
           (Trace.dropped ()) Trace_buffer.capacity);
    Buffer.contents b
  end
