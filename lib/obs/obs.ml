module Json = Json

let now_ns = Monotonic_clock.now

(* Global switches.  [on] gates all bookkeeping; [trace_on] additionally
   buffers begin/end/instant events for export.  Both default to off so
   the instrumented hot paths pay one load+branch. *)
let on = ref false
let trace_on = ref false
let epoch = ref (now_ns ())

let enable () = on := true

let enable_tracing () =
  on := true;
  trace_on := true

let disable () =
  on := false;
  trace_on := false

let enabled () = !on
let tracing () = !trace_on

(* --- domain shards ----------------------------------------------------- *)

(* Metrics are sharded per domain: every counter/histogram owns one
   accumulator cell per shard slot, a domain writes only its own slot
   (plain unsynchronized stores — single-word writes cannot tear under
   the OCaml memory model), and reads merge all slots.  Merged totals
   are exact once the writing domains have been joined: [Domain.join]
   establishes happens-before, so the reader sees every store.

   Slot lifecycle: a domain gets a slot lazily (first instrumented
   operation) from a mutex-guarded free list and gives it back via
   [Domain.at_exit].  Slot reuse is sound because cells are never
   cleared at domain exit — the sums survive the owner.  If more than
   [max_shards] domains run at once, latecomers share the last slot;
   their read-modify-write increments can then race (documented
   degradation, never a crash). *)

let max_shards = 64

let registry_mutex = Mutex.create ()
let locked f = Mutex.protect registry_mutex f

type span_agg = {
  mutable acount : int;
  mutable atotal_ns : int64;
  mutable aself_ns : int64;
}

module Trace_buffer = struct
  type phase = Begin | End | Instant

  type event = {
    name : string;
    ph : phase;
    ts_ns : int64;
    tid : int;
    args : (string * string) list;
  }

  let capacity = 1 lsl 18
end

type frame = {
  sname : string;
  start_ns : int64;
  mutable child_ns : int64;
  mutable closed : bool;
}

(* Everything one domain touches without synchronization: its shard
   slot, its span stack, its per-name span aggregates and its trace
   buffer.  States are registered globally so flush-time merges see the
   data of domains that already exited. *)
type domain_state = {
  uid : int; (* stable trace tid; 1 = first domain to instrument *)
  slot : int; (* shard index into counter/histogram cells *)
  mutable stack : frame list;
  aggs : (string, span_agg) Hashtbl.t;
  mutable ebuf : Trace_buffer.event array;
  mutable elen : int;
  mutable edropped : int;
}

let states : domain_state list ref = ref []
let free_slots = ref (List.init max_shards Fun.id)
let next_uid = ref 0

let new_state () =
  let st, owned =
    locked (fun () ->
        let slot, owned =
          match !free_slots with
          | s :: rest ->
              free_slots := rest;
              (s, true)
          | [] -> (max_shards - 1, false)
        in
        incr next_uid;
        let st =
          {
            uid = !next_uid;
            slot;
            stack = [];
            aggs = Hashtbl.create 32;
            ebuf = Array.make 0 { Trace_buffer.name = ""; ph = Instant; ts_ns = 0L; tid = 0; args = [] };
            elen = 0;
            edropped = 0;
          }
        in
        states := st :: !states;
        (st, owned))
  in
  (* release the slot when the owning domain exits (cells are never
     cleared, so the slot's sums survive the owner and reuse stays
     exact); registered outside the lock *)
  if owned then
    Domain.at_exit (fun () ->
        locked (fun () -> free_slots := st.slot :: !free_slots));
  st

let state_key = Domain.DLS.new_key new_state
let[@inline] state () = Domain.DLS.get state_key

let all_states () = locked (fun () -> List.rev !states)

(* --- counters ---------------------------------------------------------- *)

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

module Counter = struct
  type t = {
    cname : string; (* registry key: base plus rendered labels *)
    cbase : string;
    clabels : (string * string) list;
    cunit : string;
    cells : int array; (* one accumulator per shard slot *)
    mutable cmax : bool; (* true once [set_max] was used: merge by max *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make ?(unit_ = "") ?(labels = []) cbase =
    let cname = cbase ^ render_labels labels in
    locked (fun () ->
        match Hashtbl.find_opt registry cname with
        | Some c -> c
        | None ->
            let c =
              {
                cname;
                cbase;
                clabels = labels;
                cunit = unit_;
                cells = Array.make max_shards 0;
                cmax = false;
              }
            in
            Hashtbl.add registry cname c;
            c)

  let[@inline] incr c =
    if !on then begin
      let s = (state ()).slot in
      c.cells.(s) <- c.cells.(s) + 1
    end

  let[@inline] add c n =
    if !on && n > 0 then begin
      let s = (state ()).slot in
      c.cells.(s) <- c.cells.(s) + n
    end

  let[@inline] set_max c n =
    if !on then begin
      let s = (state ()).slot in
      if n > c.cells.(s) then begin
        c.cells.(s) <- n;
        c.cmax <- true
      end
    end

  let value c =
    if c.cmax then Array.fold_left max 0 c.cells
    else Array.fold_left ( + ) 0 c.cells

  let name c = c.cname
  let base c = c.cbase
  let labels c = c.clabels
  let unit_ c = c.cunit

  let snapshot () =
    Hashtbl.fold
      (fun _ c acc -> if value c <> 0 then (c.cname, value c) :: acc else acc)
      registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let all () =
    Hashtbl.fold (fun _ c acc -> if value c <> 0 then c :: acc else acc)
      registry []
    |> List.sort (fun a b -> compare a.cname b.cname)

  let reset () =
    Hashtbl.iter
      (fun _ c ->
        Array.fill c.cells 0 max_shards 0;
        c.cmax <- false)
      registry

  (* Labeled families: one logical metric keyed by a label value, e.g.
     [decision.route{route="chase"}].  [tag] is memoized through the
     registry, but hot paths should hoist the child counter. *)
  type family = { fbase : string; funit : string; flabel : string }

  let family ?(unit_ = "") ~label fbase = { fbase; funit = unit_; flabel = label }
  let tag fam v = make ~unit_:fam.funit ~labels:[ (fam.flabel, v) ] fam.fbase
end

(* --- gauges ------------------------------------------------------------ *)

(* Instantaneous readings (live nodes, worklist depth): last writer
   wins, no shard merge — exactness is a counter/histogram property. *)
module Gauge = struct
  type t = {
    gname : string;
    gbase : string;
    glabels : (string * string) list;
    gunit : string;
    mutable v : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(unit_ = "") ?(labels = []) gbase =
    let gname = gbase ^ render_labels labels in
    locked (fun () ->
        match Hashtbl.find_opt registry gname with
        | Some g -> g
        | None ->
            let g = { gname; gbase; glabels = labels; gunit = unit_; v = 0 } in
            Hashtbl.add registry gname g;
            g)

  let[@inline] set g n = if !on then g.v <- n
  let[@inline] add g n = if !on then g.v <- g.v + n
  let[@inline] sub g n = if !on then g.v <- g.v - n
  let value g = g.v
  let name g = g.gname
  let base g = g.gbase
  let labels g = g.glabels
  let unit_ g = g.gunit

  let snapshot () =
    Hashtbl.fold
      (fun _ g acc -> if g.v <> 0 then (g.gname, g.v) :: acc else acc)
      registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let all () =
    Hashtbl.fold (fun _ g acc -> if g.v <> 0 then g :: acc else acc) registry []
    |> List.sort (fun a b -> compare a.gname b.gname)

  let reset () = Hashtbl.iter (fun _ g -> g.v <- 0) registry
end

(* --- histograms -------------------------------------------------------- *)

module Histogram = struct
  let max_samples = 4096
  let samples_per_shard = 512

  (* generic decades; latency histograms pass explicit ns bounds *)
  let default_buckets =
    [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

  type cell = {
    mutable n : int;
    mutable csum : float;
    mutable cmin : float;
    mutable cmax : float;
    bcounts : int array; (* per-bound, non-cumulative; last = overflow *)
    reservoir : float array; (* first [samples_per_shard] observations *)
    mutable rlen : int;
  }

  type t = {
    hname : string;
    hbase : string;
    hlabels : (string * string) list;
    hunit : string;
    bounds : float array;
    cells : cell option array; (* lazily allocated, owner-written *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(unit_ = "") ?(labels = []) ?buckets hbase =
    let hname = hbase ^ render_labels labels in
    locked (fun () ->
        match Hashtbl.find_opt registry hname with
        | Some h -> h
        | None ->
            let bounds =
              match buckets with Some b -> Array.copy b | None -> default_buckets
            in
            let h =
              {
                hname;
                hbase;
                hlabels = labels;
                hunit = unit_;
                bounds;
                cells = Array.make max_shards None;
              }
            in
            Hashtbl.add registry hname h;
            h)

  let cell_of h slot =
    match h.cells.(slot) with
    | Some c -> c
    | None ->
        let c =
          {
            n = 0;
            csum = 0.;
            cmin = infinity;
            cmax = neg_infinity;
            bcounts = Array.make (Array.length h.bounds + 1) 0;
            reservoir = Array.make samples_per_shard 0.;
            rlen = 0;
          }
        in
        (* single writer per slot: the publishing store is the only
           cross-domain handoff, and merges happen post-join *)
        h.cells.(slot) <- Some c;
        c

  let observe h x =
    if !on then begin
      let c = cell_of h (state ()).slot in
      if c.rlen < samples_per_shard then begin
        c.reservoir.(c.rlen) <- x;
        c.rlen <- c.rlen + 1
      end;
      c.n <- c.n + 1;
      c.csum <- c.csum +. x;
      if x < c.cmin then c.cmin <- x;
      if x > c.cmax then c.cmax <- x;
      let nb = Array.length h.bounds in
      let rec place i =
        if i >= nb then c.bcounts.(nb) <- c.bcounts.(nb) + 1
        else if x <= h.bounds.(i) then c.bcounts.(i) <- c.bcounts.(i) + 1
        else place (i + 1)
      in
      place 0
    end

  let fold_cells h f acc =
    Array.fold_left
      (fun acc c -> match c with None -> acc | Some c -> f acc c)
      acc h.cells

  let count h = fold_cells h (fun acc c -> acc + c.n) 0
  let sum h = fold_cells h (fun acc c -> acc +. c.csum) 0.
  let min_ h = fold_cells h (fun acc c -> Float.min acc c.cmin) infinity
  let max_ h = fold_cells h (fun acc c -> Float.max acc c.cmax) neg_infinity
  let mean h = let n = count h in if n = 0 then nan else sum h /. float_of_int n

  (* per-bound counts merged across shards; last entry is the overflow
     bucket, so the values always sum to [count] — the "no torn
     buckets" invariant the domain stress test asserts *)
  let buckets h =
    let nb = Array.length h.bounds in
    let acc = Array.make (nb + 1) 0 in
    ignore
      (fold_cells h
         (fun () c ->
           Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) c.bcounts)
         ());
    Array.to_list
      (Array.mapi
         (fun i v -> ((if i < nb then h.bounds.(i) else infinity), v))
         acc)

  let percentile h p =
    let samples =
      fold_cells h (fun acc c -> Array.sub c.reservoir 0 c.rlen :: acc) []
    in
    let a = Array.concat samples in
    let n = min (Array.length a) max_samples in
    if n = 0 then nan
    else begin
      let a = Array.sub a 0 n in
      Array.sort compare a;
      let idx = int_of_float (p *. float_of_int (n - 1)) in
      a.(max 0 (min (n - 1) idx))
    end

  let name h = h.hname
  let base h = h.hbase
  let labels h = h.hlabels
  let unit_ h = h.hunit

  let all () =
    Hashtbl.fold (fun _ h acc -> if count h > 0 then h :: acc else acc)
      registry []
    |> List.sort (fun a b -> compare a.hname b.hname)

  let reset () =
    Hashtbl.iter (fun _ h -> Array.fill h.cells 0 max_shards None) registry

  type family = { fbase : string; funit : string; flabel : string; fbuckets : float array option }

  let family ?(unit_ = "") ?buckets ~label fbase =
    { fbase; funit = unit_; flabel = label; fbuckets = buckets }

  let tag fam v =
    make ~unit_:fam.funit ?buckets:fam.fbuckets ~labels:[ (fam.flabel, v) ]
      fam.fbase
end

(* --- span stack and trace buffer (per domain) -------------------------- *)

let push_event (st : domain_state) (e : Trace_buffer.event) =
  if st.elen >= Trace_buffer.capacity then st.edropped <- st.edropped + 1
  else begin
    if st.elen >= Array.length st.ebuf then begin
      let cap = max 1024 (min Trace_buffer.capacity (2 * Array.length st.ebuf)) in
      let bigger = Array.make cap e in
      Array.blit st.ebuf 0 bigger 0 st.elen;
      st.ebuf <- bigger
    end;
    st.ebuf.(st.elen) <- e;
    st.elen <- st.elen + 1
  end

let agg_of (st : domain_state) name =
  match Hashtbl.find_opt st.aggs name with
  | Some a -> a
  | None ->
      let a = { acount = 0; atotal_ns = 0L; aself_ns = 0L } in
      Hashtbl.add st.aggs name a;
      a

module Span = struct
  type t = frame option

  let null = None
  let depth () = List.length (state ()).stack

  let rel ts = Int64.sub ts !epoch

  let start ?(args = []) sname =
    if not !on then None
    else begin
      let st = state () in
      let ts = now_ns () in
      if !trace_on then
        push_event st
          { Trace_buffer.name = sname; ph = Begin; ts_ns = rel ts; tid = st.uid; args };
      let f = { sname; start_ns = ts; child_ns = 0L; closed = false } in
      st.stack <- f :: st.stack;
      Some f
    end

  (* Close [f]: emit the end event, fold the duration into the per-name
     aggregate, and charge it to the parent's child time.  [st.stack]
     must already have [f] popped. *)
  let close st ?(args = []) f =
    if not f.closed then begin
      f.closed <- true;
      let ts = now_ns () in
      let dur = Int64.sub ts f.start_ns in
      if !trace_on then
        push_event st
          { Trace_buffer.name = f.sname; ph = End; ts_ns = rel ts; tid = st.uid; args };
      let a = agg_of st f.sname in
      a.acount <- a.acount + 1;
      a.atotal_ns <- Int64.add a.atotal_ns dur;
      a.aself_ns <- Int64.add a.aself_ns (Int64.sub dur f.child_ns);
      match st.stack with
      | parent :: _ -> parent.child_ns <- Int64.add parent.child_ns dur
      | [] -> ()
    end

  let stop ?(args = []) t =
    match t with
    | None -> ()
    | Some f ->
        let st = state () in
        if (not f.closed) && List.memq f st.stack then begin
          (* auto-close anything opened inside [f] that was left open,
             innermost first, so the trace stays properly nested *)
          let rec unwind () =
            match st.stack with
            | top :: rest ->
                st.stack <- rest;
                if top == f then close st ~args f
                else begin
                  close st top;
                  unwind ()
                end
            | [] -> ()
          in
          unwind ()
        end

  (* the disabled path must not pay the Fun.protect closure + handler *)
  let with_ ?args sname f =
    if not !on then f ()
    else
      let s = start ?args sname in
      Fun.protect ~finally:(fun () -> stop s) f

  let event ?(args = []) name =
    if !on && !trace_on then begin
      let st = state () in
      push_event st
        { Trace_buffer.name; ph = Instant; ts_ns = rel (now_ns ()); tid = st.uid; args }
    end
end

(* --- audit journal ------------------------------------------------------ *)

(* One structured JSONL record per decision (and per snapshot
   park/resume): per-request provenance the aggregate counters cannot
   give.  Separately switched from the metrics layer; the buffer is
   mutex-guarded (records are rare next to counter bumps) and capped. *)
module Audit = struct
  let audit_on = ref false
  let capacity = 1 lsl 16

  let mutex = Mutex.create ()
  let buf : Json.t list ref = ref [] (* newest first *)
  let len = ref 0
  let seq = ref 0
  let dropped_n = ref 0

  let enable () = audit_on := true
  let disable () = audit_on := false
  let enabled () = !audit_on

  let clear () =
    Mutex.protect mutex (fun () ->
        buf := [];
        len := 0;
        seq := 0;
        dropped_n := 0)

  let emit ?(fields = []) event =
    if !audit_on then
      Mutex.protect mutex (fun () ->
          if !len >= capacity then incr dropped_n
          else begin
            let record =
              Json.Obj
                (("seq", Json.Int !seq)
                :: ("ts_ns", Json.Int (Int64.to_int (Int64.sub (now_ns ()) !epoch)))
                :: ("event", Json.String event)
                :: fields)
            in
            incr seq;
            buf := record :: !buf;
            incr len
          end)

  let records () = Mutex.protect mutex (fun () -> List.rev !buf)
  let dropped () = !dropped_n

  let to_jsonl () =
    match records () with
    | [] -> ""
    | rs -> String.concat "\n" (List.map Json.to_string rs) ^ "\n"

  let write path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_jsonl ()))

  (* Minimal schema check shared by tests and future [pathctld]
     ingestion: every record has the envelope; decision records name a
     route and a verdict. *)
  let validate j =
    let ( let* ) = Result.bind in
    let field name =
      match Json.member name j with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name)
    in
    let string_field name =
      let* v = field name in
      match Json.as_string v with
      | Some s when s <> "" -> Ok s
      | _ -> Error (Printf.sprintf "field %S is not a non-empty string" name)
    in
    let int_field name =
      let* v = field name in
      match Json.as_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S is not an integer" name)
    in
    match j with
    | Json.Obj _ ->
        let* s = int_field "seq" in
        let* _ = int_field "ts_ns" in
        let* event = string_field "event" in
        if s < 0 then Error "negative seq"
        else if event = "decision" then
          let* _ = string_field "route" in
          let* _ = string_field "verdict" in
          Ok ()
        else Ok ()
    | _ -> Error "record is not a JSON object"
end

let reset () =
  Counter.reset ();
  Gauge.reset ();
  Histogram.reset ();
  List.iter
    (fun st ->
      st.stack <- [];
      Hashtbl.reset st.aggs;
      st.ebuf <- Array.make 0 { Trace_buffer.name = ""; ph = Instant; ts_ns = 0L; tid = 0; args = [] };
      st.elen <- 0;
      st.edropped <- 0)
    (all_states ());
  Audit.clear ();
  epoch := now_ns ()

(* --- trace export ------------------------------------------------------ *)

module Trace = struct
  type phase = Trace_buffer.phase = Begin | End | Instant
  type event = Trace_buffer.event = {
    name : string;
    ph : phase;
    ts_ns : int64;
    tid : int;
    args : (string * string) list;
  }

  (* grouped by originating domain (uid order), each group in emission
     order — every group is independently well-nested *)
  let events () =
    List.concat_map
      (fun st -> List.init st.elen (fun i -> st.ebuf.(i)))
      (all_states ())

  let dropped () =
    List.fold_left (fun acc st -> acc + st.edropped) 0 (all_states ())

  (* Events for the still-open spans, innermost last opened first, so a
     partial trace (e.g. after a cancellation) remains balanced. *)
  let synthetic_ends_of (st : domain_state) =
    let ts = Int64.sub (now_ns ()) !epoch in
    List.map
      (fun (f : frame) ->
        {
          name = f.sname;
          ph = End;
          ts_ns = ts;
          tid = st.uid;
          args = [ ("synthetic", "open-at-export") ];
        })
      st.stack


  let json_of_event e =
    let ph, extra =
      match e.ph with
      | Begin -> ("B", [])
      | End -> ("E", [])
      | Instant -> ("i", [ ("s", Json.String "t") ])
    in
    Json.Obj
      ([
         ("name", Json.String e.name);
         ("cat", Json.String "pathcons");
         ("ph", Json.String ph);
         (* Chrome's ts unit is microseconds *)
         ("ts", Json.Float (Int64.to_float e.ts_ns /. 1e3));
         ("pid", Json.Int 1);
         ("tid", Json.Int e.tid);
       ]
      @ extra
      @
      match e.args with
      | [] -> []
      | args ->
          [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

  let to_chrome_json () =
    let per_state =
      List.concat_map
        (fun st ->
          List.init st.elen (fun i -> st.ebuf.(i)) @ synthetic_ends_of st)
        (all_states ())
    in
    Json.to_string
      (Json.Obj
         [
           ("traceEvents", Json.List (List.map json_of_event per_state));
           ("displayTimeUnit", Json.String "ns");
           ("otherData", Json.Obj [ ("producer", Json.String "pathcons/obs") ]);
         ])

  let jsonl_of_event e =
    Json.to_string
      (Json.Obj
         ([
            ("name", Json.String e.name);
            ( "ph",
              Json.String
                (match e.ph with Begin -> "B" | End -> "E" | Instant -> "i") );
            ("ts_ns", Json.Int (Int64.to_int e.ts_ns));
            ("tid", Json.Int e.tid);
          ]
         @
         match e.args with
         | [] -> []
         | args ->
             [
               ( "args",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args) );
             ]))

  let to_jsonl () =
    String.concat "\n" (List.map jsonl_of_event (events ())) ^ "\n"

  let write_chrome path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_chrome_json ());
        output_string oc "\n")

  (* Folded stacks (flamegraph.pl / inferno): replay each domain's
     Begin/End stream, charging self time (duration minus child time)
     to the semicolon-joined stack.  Weights are nanoseconds. *)
  let to_folded () =
    let tbl : (string, int64) Hashtbl.t = Hashtbl.create 64 in
    let charge key self =
      let prev = Option.value ~default:0L (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (Int64.add prev self)
    in
    List.iter
      (fun st ->
        let evs =
          List.init st.elen (fun i -> st.ebuf.(i)) @ synthetic_ends_of st
        in
        (* replay stack: (name, begin ts, accumulated child ns) *)
        let stack = ref [] in
        List.iter
          (fun e ->
            match e.ph with
            | Instant -> ()
            | Begin -> stack := (e.name, e.ts_ns, ref 0L) :: !stack
            | End -> (
                match !stack with
                | (name, t0, child) :: rest when String.equal name e.name ->
                    stack := rest;
                    let dur = Int64.max 0L (Int64.sub e.ts_ns t0) in
                    let self = Int64.max 0L (Int64.sub dur !child) in
                    (match rest with
                    | (_, _, pchild) :: _ -> pchild := Int64.add !pchild dur
                    | [] -> ());
                    let key =
                      String.concat ";"
                        (List.rev_map (fun (n, _, _) -> n) ((name, t0, child) :: rest))
                    in
                    charge key self
                | _ -> (* unbalanced End: drop it *) ()))
          evs)
      (all_states ());
    let lines =
      Hashtbl.fold
        (fun key self acc ->
          if Int64.compare self 0L > 0 then
            Printf.sprintf "%s %Ld" key self :: acc
          else acc)
        tbl []
      |> List.sort compare
    in
    match lines with [] -> "" | ls -> String.concat "\n" ls ^ "\n"

  let write_folded path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_folded ()))
end

(* --- stats ------------------------------------------------------------- *)

module Stats = struct
  type span_stat = { count : int; total_ns : int64; self_ns : int64 }

  let spans () =
    let merged : (string, span_stat) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun st ->
        Hashtbl.iter
          (fun name (a : span_agg) ->
            let prev =
              Option.value
                ~default:{ count = 0; total_ns = 0L; self_ns = 0L }
                (Hashtbl.find_opt merged name)
            in
            Hashtbl.replace merged name
              {
                count = prev.count + a.acount;
                total_ns = Int64.add prev.total_ns a.atotal_ns;
                self_ns = Int64.add prev.self_ns a.aself_ns;
              })
          st.aggs)
      (all_states ());
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) merged []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b.total_ns a.total_ns)

  let pp_ns ns =
    if Float.is_nan ns then "n/a"
    else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)

  let to_json () =
    let counters =
      Json.Obj
        (List.map
           (fun c -> (Counter.name c, Json.Int (Counter.value c)))
           (Counter.all ()))
    in
    let gauges =
      Json.Obj
        (List.map
           (fun g -> (Gauge.name g, Json.Int (Gauge.value g)))
           (Gauge.all ()))
    in
    let histograms =
      Json.Obj
        (List.map
           (fun (h : Histogram.t) ->
             ( Histogram.name h,
               Json.Obj
                 [
                   ("unit", Json.String (Histogram.unit_ h));
                   ("count", Json.Int (Histogram.count h));
                   ("sum", Json.Float (Histogram.sum h));
                   ("min", Json.Float (Histogram.min_ h));
                   ("max", Json.Float (Histogram.max_ h));
                   ("mean", Json.Float (Histogram.mean h));
                   ("p50", Json.Float (Histogram.percentile h 0.5));
                   ("p90", Json.Float (Histogram.percentile h 0.9));
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (le, n) ->
                            Json.Obj
                              [
                                ( "le",
                                  if Float.is_integer le && Float.abs le < 1e15
                                  then Json.Int (int_of_float le)
                                  else if le = infinity then Json.String "+Inf"
                                  else Json.Float le );
                                ("count", Json.Int n);
                              ])
                          (Histogram.buckets h)) );
                 ] ))
           (Histogram.all ()))
    in
    let spans_json =
      Json.Obj
        (List.map
           (fun (name, s) ->
             ( name,
               Json.Obj
                 [
                   ("count", Json.Int s.count);
                   ("total_ns", Json.Int (Int64.to_int s.total_ns));
                   ("self_ns", Json.Int (Int64.to_int s.self_ns));
                 ] ))
           (spans ()))
    in
    Json.Obj
      [
        ("counters", counters);
        ("gauges", gauges);
        ("spans", spans_json);
        ("histograms", histograms);
        ("dropped_events", Json.Int (Trace.dropped ()));
      ]

  let to_text () =
    let b = Buffer.create 1024 in
    let counters = Counter.all () in
    if counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf "  %-42s %12d%s\n" (Counter.name c)
               (Counter.value c)
               (if Counter.unit_ c = "" then ""
                else " " ^ Counter.unit_ c)))
        counters
    end;
    let gauges = Gauge.all () in
    if gauges <> [] then begin
      Buffer.add_string b "gauges:\n";
      List.iter
        (fun g ->
          Buffer.add_string b
            (Printf.sprintf "  %-42s %12d%s\n" (Gauge.name g) (Gauge.value g)
               (if Gauge.unit_ g = "" then "" else " " ^ Gauge.unit_ g)))
        gauges
    end;
    let sps = spans () in
    if sps <> [] then begin
      (* share is relative to the busiest span (normally the root) *)
      let wall =
        List.fold_left
          (fun acc (_, s) -> Int64.max acc s.total_ns)
          1L sps
      in
      Buffer.add_string b "spans:\n";
      Buffer.add_string b
        (Printf.sprintf "  %-34s %8s %12s %12s %7s\n" "name" "count" "total"
           "self" "share");
      List.iter
        (fun (name, s) ->
          Buffer.add_string b
            (Printf.sprintf "  %-34s %8d %12s %12s %6.1f%%\n" name s.count
               (pp_ns (Int64.to_float s.total_ns))
               (pp_ns (Int64.to_float s.self_ns))
               (100. *. Int64.to_float s.total_ns /. Int64.to_float wall)))
        sps
    end;
    let hs = Histogram.all () in
    if hs <> [] then begin
      Buffer.add_string b "histograms:\n";
      List.iter
        (fun (h : Histogram.t) ->
          Buffer.add_string b
            (Printf.sprintf
               "  %-34s count %d  mean %.1f  p50 %.1f  p90 %.1f  max %.1f%s\n"
               (Histogram.name h) (Histogram.count h) (Histogram.mean h)
               (Histogram.percentile h 0.5)
               (Histogram.percentile h 0.9)
               (Histogram.max_ h)
               (if Histogram.unit_ h = "" then ""
                else " (" ^ Histogram.unit_ h ^ ")")))
        hs
    end;
    if Trace.dropped () > 0 then
      Buffer.add_string b
        (Printf.sprintf "trace buffer: %d event(s) dropped (capacity %d)\n"
           (Trace.dropped ()) Trace_buffer.capacity);
    Buffer.contents b
  end

(* --- OpenMetrics exposition -------------------------------------------- *)

(* The text format pathctld will mount: every counter family as
   [<name>_total], gauges verbatim, histograms with cumulative
   [_bucket{le=...}] series, span aggregates as three derived counter
   families, terminated by [# EOF]. *)
module Openmetrics = struct
  let prefix = "pathcons_"

  let sanitize name =
    let b = Buffer.create (String.length name) in
    String.iter
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b ch
        | _ -> Buffer.add_char b '_')
      name;
    prefix ^ Buffer.contents b

  let escape_label v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun ch ->
        match ch with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | ch -> Buffer.add_char b ch)
      v;
    Buffer.contents b

  let render_label_set = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
               labels)
        ^ "}"

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f

  let le_repr f = if f = infinity then "+Inf" else float_repr f

  (* group registry entries by sanitized family name, keeping the label
     sets sorted, so the output is deterministic *)
  let group_by_base ~base ~labels items =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun it ->
        let key = base it in
        Hashtbl.replace tbl key (it :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
      items;
    Hashtbl.fold (fun key its acc -> (key, List.rev its) :: acc) tbl []
    |> List.map (fun (key, its) ->
           ( key,
             List.sort (fun a b -> compare (labels a) (labels b)) its ))
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let render () =
    let b = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
    (* counters *)
    List.iter
      (fun (base, cs) ->
        let m = sanitize base in
        line "# TYPE %s counter" m;
        (match cs with
        | c :: _ when Counter.unit_ c <> "" ->
            line "# HELP %s %s (%s)" m base (Counter.unit_ c)
        | _ -> line "# HELP %s %s" m base);
        List.iter
          (fun c ->
            line "%s_total%s %d" m
              (render_label_set (Counter.labels c))
              (Counter.value c))
          cs)
      (group_by_base ~base:Counter.base ~labels:Counter.labels (Counter.all ()));
    (* gauges *)
    List.iter
      (fun (base, gs) ->
        let m = sanitize base in
        line "# TYPE %s gauge" m;
        (match gs with
        | g :: _ when Gauge.unit_ g <> "" ->
            line "# HELP %s %s (%s)" m base (Gauge.unit_ g)
        | _ -> line "# HELP %s %s" m base);
        List.iter
          (fun g ->
            line "%s%s %d" m (render_label_set (Gauge.labels g)) (Gauge.value g))
          gs)
      (group_by_base ~base:Gauge.base ~labels:Gauge.labels (Gauge.all ()));
    (* histograms: cumulative buckets per OpenMetrics *)
    List.iter
      (fun (base, hs) ->
        let m = sanitize base in
        line "# TYPE %s histogram" m;
        (match hs with
        | h :: _ when Histogram.unit_ h <> "" ->
            line "# HELP %s %s (%s)" m base (Histogram.unit_ h)
        | _ -> line "# HELP %s %s" m base);
        List.iter
          (fun h ->
            let labels = Histogram.labels h in
            let cum = ref 0 in
            List.iter
              (fun (le, n) ->
                cum := !cum + n;
                line "%s_bucket%s %d" m
                  (render_label_set (labels @ [ ("le", le_repr le) ]))
                  !cum)
              (Histogram.buckets h);
            line "%s_sum%s %s" m (render_label_set labels)
              (float_repr (Histogram.sum h));
            line "%s_count%s %d" m (render_label_set labels) (Histogram.count h))
          hs)
      (group_by_base ~base:Histogram.base ~labels:Histogram.labels
         (Histogram.all ()));
    (* span aggregates as derived counters *)
    let sps =
      List.sort (fun (a, _) (b, _) -> compare a b) (Stats.spans ())
    in
    if sps <> [] then begin
      line "# TYPE %sspan_calls counter" prefix;
      List.iter
        (fun (name, (s : Stats.span_stat)) ->
          line "%sspan_calls_total{span=\"%s\"} %d" prefix (escape_label name)
            s.Stats.count)
        sps;
      line "# TYPE %sspan_time_ns counter" prefix;
      List.iter
        (fun (name, (s : Stats.span_stat)) ->
          line "%sspan_time_ns_total{span=\"%s\"} %Ld" prefix
            (escape_label name) s.Stats.total_ns)
        sps;
      line "# TYPE %sspan_self_time_ns counter" prefix;
      List.iter
        (fun (name, (s : Stats.span_stat)) ->
          line "%sspan_self_time_ns_total{span=\"%s\"} %Ld" prefix
            (escape_label name) s.Stats.self_ns)
        sps
    end;
    line "# TYPE %sobs_dropped_events counter" prefix;
    line "%sobs_dropped_events_total %d" prefix (Trace.dropped ());
    Buffer.add_string b "# EOF\n";
    Buffer.contents b

  let write path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (render ()))
end
