(** A minimal JSON tree, printer and parser.

    The observability layer has to emit (Chrome [trace_event] files,
    [--stats json], [BENCH_table1.json]) and re-read (the bench
    regression gate, the trace validator in the test suite) JSON
    without pulling a serialization dependency into every library that
    carries instrumentation.  This is a deliberately small, strict
    implementation: UTF-8 strings, no comments, no trailing commas. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats render as
    [null]; integral floats keep a [.0] so they re-parse as [Float]. *)

val parse : string -> (t, string) result
(** Strict parser; the error message carries a byte offset.  Numbers
    without [.], [e] or [E] that fit in an OCaml [int] parse as [Int],
    all others as [Float]. *)

(** {2 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val as_string : t -> string option
val as_int : t -> int option
val as_float : t -> float option
(** [as_float] accepts both [Int] and [Float]. *)

val as_list : t -> t list option
val as_obj : t -> (string * t) list option
