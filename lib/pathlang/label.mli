(** Edge labels.

    A label is the name of a binary relation symbol in the signature
    [sigma = (r, E)] of Section 2.1 of the paper: an edge label of a
    rooted edge-labeled directed graph.  Labels are non-empty strings that
    contain neither whitespace nor the path separator ['.'] nor the
    reserved delimiters used by the constraint DSL. *)

type t = private string

val make : string -> t
(** [make s] validates [s] and returns it as a label.
    @raise Invalid_argument if [s] is empty or contains a forbidden
    character (whitespace, ['.'], ['('], [')'], ['['], [']'], [':'],
    ['>'], ['<'], ['-'], ['='], [','])). *)

val of_string : string -> t
(** Alias of {!make}. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val id : t -> int
(** The label's interned id: a dense non-negative integer, unique per
    distinct label and stable for the lifetime of the process (first
    use assigns the next id).  {!Path} hash-consing and the constraint
    {!Store} index on it.  Not stable across runs: never persist it. *)

val pp : Format.formatter -> t -> unit

(** Sets and maps over labels. *)
module Set : Set.S with type elt = t

module Map : Map.S with type key = t
