(** Concrete syntax for P_c constraints.

    One constraint per line:
    {v
      # extent constraint (word constraint: empty prefix)
      book.author -> person
      # forward constraint with prefix MIT
      MIT : book.author -> person
      # backward (inverse) constraint: wrote(y, x) for author(x, y)
      book : author <- wrote
      # the empty path is written eps
      MIT.book : eps -> ref
    v}
    Blank lines and lines starting with [#] are ignored. *)

type error = {
  line : int;  (** 1-based line of the offending token *)
  col : int;  (** 1-based column of the offending token *)
  token : string;  (** the offending token ([""] when not token-shaped) *)
  reason : string;  (** what is wrong, without position information *)
}
(** A structured parse error, precise enough for editor/CI diagnostics. *)

val error_to_string : error -> string
(** ["line L, column C: at \"tok\": reason"]. *)

val constraint_of_string_spanned :
  string -> (Constr.t * Span.t, error) result
(** Parses a single constraint, returning the span of its text (the
    input is treated as line 1). *)

val constraints_of_string_spanned :
  string -> ((Constr.t * Span.t) list, error) result
(** Parses a whole document (one constraint per line), attaching to each
    constraint the span of the line region it was parsed from. *)

val constraint_of_string : string -> (Constr.t, string) result
(** Parses a single constraint; [constraint_of_string_spanned] with the
    error rendered by {!error_to_string}. *)

val constraints_of_string : string -> (Constr.t list, string) result
(** Parses a whole document (one constraint per line); the error message
    carries the 1-based line number, column, and the offending token. *)

val path_of_string : string -> (Path.t, string) result
(** Parses a dotted path or [eps]. *)
