(** Concrete syntax for P_c constraints.

    One constraint per line:
    {v
      # extent constraint (word constraint: empty prefix)
      book.author -> person
      # forward constraint with prefix MIT
      MIT : book.author -> person
      # backward (inverse) constraint: wrote(y, x) for author(x, y)
      book : author <- wrote
      # the empty path is written eps
      MIT.book : eps -> ref
    v}
    Blank lines and lines starting with [#] are ignored. *)

type error = {
  line : int;  (** 1-based line of the offending token *)
  col : int;  (** 1-based column of the offending token *)
  token : string;  (** the offending token ([""] when not token-shaped) *)
  reason : string;  (** what is wrong, without position information *)
}
(** A structured parse error, precise enough for editor/CI diagnostics. *)

val error_to_string : error -> string
(** ["line L, column C: at \"tok\": reason"]. *)

type token_spans = {
  prefix_spans : Span.t list;  (** one span per prefix label, in order *)
  lhs_spans : Span.t list;
  rhs_spans : Span.t list;
}
(** The span of every label token of a constraint, used by analyses that
    localize findings to a single path step.  All lists are empty when
    the constraint came from a syntax without token positions (XML). *)

val no_token_spans : token_spans

type located = {
  constr : Constr.t;
  span : Span.t;  (** the whole constraint's text *)
  tokens : token_spans;
}

type pragma = {
  codes : string list;
      (** exact codes ([PC300]) or families ([PC3xx]); may be empty *)
  file_wide : bool;  (** [pathctl-disable-file] vs [pathctl-disable] *)
  applies_to : int option;
      (** for next-line pragmas, the 1-based line of the governed
          constraint; [None] when no constraint follows *)
  pragma_span : Span.t;
}
(** A suppression comment: [# pathctl-disable CODE ...] silences the
    listed diagnostics on the next constraint, [# pathctl-disable-file
    CODE ...] on the whole file.  Codes may be separated by spaces or
    commas.  Ordinary comments are not pragmas. *)

type document = {
  constraints : located list;
  pragmas : pragma list;
}

val document_of_string : string -> (document, error) result
(** Parses a whole document: constraints with per-token spans, plus any
    suppression pragmas found in comments (with their governed line
    already resolved). *)

val constraint_of_string_spanned :
  string -> (Constr.t * Span.t, error) result
(** Parses a single constraint, returning the span of its text (the
    input is treated as line 1). *)

val constraints_of_string_spanned :
  string -> ((Constr.t * Span.t) list, error) result
(** Parses a whole document (one constraint per line), attaching to each
    constraint the span of the line region it was parsed from. *)

val constraint_of_string : string -> (Constr.t, string) result
(** Parses a single constraint; [constraint_of_string_spanned] with the
    error rendered by {!error_to_string}. *)

val constraints_of_string : string -> (Constr.t list, string) result
(** Parses a whole document (one constraint per line); the error message
    carries the 1-based line number, column, and the offending token. *)

val path_of_string : string -> (Path.t, string) result
(** Parses a dotted path or [eps]. *)
