(** Serialization of the global interning tables under parallel runs.

    {!Label.id} and {!Path.make} both go through process-global mutable
    tables (the dense label-id map and the weak hash-consing set).
    Those tables are deliberately unsynchronized: the single-domain hot
    path must not pay for a lock it never contends.  When a [Par] pool
    is about to spawn worker domains it {e arms} this lock, and from
    then on every interning operation takes a process-wide mutex — the
    hash-consing invariant (structural equality iff physical equality)
    survives concurrent construction.

    Arming is monotonic and happens-before the first worker domain
    starts (the pool arms before [Domain.spawn]), so a worker can never
    observe the unarmed fast path. *)

val arm : unit -> unit
(** Switch interning to the locked path for the rest of the process.
    Idempotent. *)

val armed : unit -> bool

val with_lock : (unit -> 'a) -> 'a
(** Run a critical section over the interning tables: under the mutex
    once {!arm} has been called, a plain call before that. *)
