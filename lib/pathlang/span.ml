type t = { line : int; start_col : int; end_col : int }

let v ~line ~start_col ~end_col =
  let line = max 1 line in
  let start_col = max 1 start_col in
  let end_col = max start_col end_col in
  { line; start_col; end_col }

let point ~line ~col = v ~line ~start_col:col ~end_col:(col + 1)

let of_offset src pos =
  let pos = min (max 0 pos) (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let pp ppf t =
  if t.end_col <= t.start_col + 1 then
    Format.fprintf ppf "%d:%d" t.line t.start_col
  else Format.fprintf ppf "%d:%d-%d" t.line t.start_col (t.end_col - 1)

let to_string t = Format.asprintf "%a" pp t
