type error = {
  line : int;
  col : int;
  token : string;
  reason : string;
}

let error_to_string e =
  if e.token = "" then
    Printf.sprintf "line %d, column %d: %s" e.line e.col e.reason
  else
    Printf.sprintf "line %d, column %d: at %S: %s" e.line e.col e.token e.reason

let is_ws c = c = ' ' || c = '\t' || c = '\r'

(* Find the first occurrence of the token [tok] in [s] within [i, j);
   tokens never occur inside labels (Label.make forbids their
   characters). *)
let find_sub tok s i j =
  let tlen = String.length tok in
  let rec find i =
    if i + tlen > j then None
    else if String.sub s i tlen = tok then Some i
    else find (i + 1)
  in
  find i

(* Trim the bounds [i, j) of [s] to the enclosed non-whitespace region. *)
let trim_bounds s i j =
  let i = ref i and j = ref j in
  while !i < !j && is_ws s.[!i] do incr i done;
  while !j > !i && is_ws s.[!j - 1] do decr j done;
  (!i, !j)

(* Parse the substring [i, j) of [line] as a path, reporting the exact
   column and text of the offending label on failure. *)
let path_at ~line_no line i j =
  let i, j = trim_bounds line i j in
  let s = String.sub line i (j - i) in
  if s = "" || s = "eps" then Ok Path.empty
  else begin
    (* split on '.' by hand, keeping each label's offset in [line] *)
    let rec go start acc =
      let stop =
        match String.index_from_opt line start '.' with
        | Some d when d < j -> d
        | _ -> j
      in
      let tok = String.sub line start (stop - start) in
      match Label.make tok with
      | l ->
          let acc = l :: acc in
          if stop < j then go (stop + 1) acc else Ok (Path.of_labels (List.rev acc))
      | exception Invalid_argument m ->
          Error { line = line_no; col = start + 1; token = tok; reason = m }
    in
    go i []
  end

(* Parse one constraint from [line] (which must contain one); [line_no]
   is its 1-based position in the enclosing document. *)
let constraint_of_line ~line_no line =
  let s0, e0 = trim_bounds line 0 (String.length line) in
  let span = Span.v ~line:line_no ~start_col:(s0 + 1) ~end_col:(e0 + 1) in
  let whole = String.sub line s0 (e0 - s0) in
  if s0 = e0 then
    Error { line = line_no; col = 1; token = ""; reason = "empty constraint" }
  else
    (* [prefix :] body, where body is [lhs -> rhs] or [lhs <- rhs] *)
    let pstart, pstop, bstart =
      match find_sub ":" line s0 e0 with
      | Some i -> (s0, i, i + 1)
      | None -> (s0, s0, s0)
    in
    let kind, lstart, lstop, rstart =
      match find_sub "->" line bstart e0 with
      | Some i -> (Some Constr.Forward, bstart, i, i + 2)
      | None -> (
          match find_sub "<-" line bstart e0 with
          | Some i -> (Some Constr.Backward, bstart, i, i + 2)
          | None -> (None, bstart, bstart, bstart))
    in
    match kind with
    | None ->
        Error
          {
            line = line_no;
            col = s0 + 1;
            token = whole;
            reason = "no '->' or '<-' found";
          }
    | Some kind -> (
        match
          ( path_at ~line_no line pstart pstop,
            path_at ~line_no line lstart lstop,
            path_at ~line_no line rstart e0 )
        with
        | Ok prefix, Ok lhs, Ok rhs ->
            Ok (Constr.make kind ~prefix ~lhs ~rhs, span)
        | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) ->
            e)

let constraint_of_string_spanned line = constraint_of_line ~line_no:1 line

let is_blank line =
  let t = String.trim line in
  t = "" || t.[0] = '#'

let constraints_of_string_spanned doc =
  let lines = String.split_on_char '\n' doc in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if is_blank line then go (n + 1) acc rest
        else (
          match constraint_of_line ~line_no:n line with
          | Ok cs -> go (n + 1) (cs :: acc) rest
          | Error e -> Error e)
  in
  go 1 [] lines

(* --- legacy string-error wrappers ------------------------------------- *)

let path_of_string s =
  match Path.of_string s with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

let constraint_of_string line =
  match constraint_of_string_spanned line with
  | Ok (c, _) -> Ok c
  | Error e -> Error (error_to_string e)

let constraints_of_string doc =
  match constraints_of_string_spanned doc with
  | Ok cs -> Ok (List.map fst cs)
  | Error e -> Error (error_to_string e)
