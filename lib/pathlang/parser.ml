type error = {
  line : int;
  col : int;
  token : string;
  reason : string;
}

let error_to_string e =
  if e.token = "" then
    Printf.sprintf "line %d, column %d: %s" e.line e.col e.reason
  else
    Printf.sprintf "line %d, column %d: at %S: %s" e.line e.col e.token e.reason

type token_spans = {
  prefix_spans : Span.t list;
  lhs_spans : Span.t list;
  rhs_spans : Span.t list;
}

let no_token_spans = { prefix_spans = []; lhs_spans = []; rhs_spans = [] }

type located = {
  constr : Constr.t;
  span : Span.t;
  tokens : token_spans;
}

type pragma = {
  codes : string list;
  file_wide : bool;
  applies_to : int option;
  pragma_span : Span.t;
}

type document = {
  constraints : located list;
  pragmas : pragma list;
}

let is_ws c = c = ' ' || c = '\t' || c = '\r'

(* Find the first occurrence of the token [tok] in [s] within [i, j);
   tokens never occur inside labels (Label.make forbids their
   characters). *)
let find_sub tok s i j =
  let tlen = String.length tok in
  let rec find i =
    if i + tlen > j then None
    else if String.sub s i tlen = tok then Some i
    else find (i + 1)
  in
  find i

(* Trim the bounds [i, j) of [s] to the enclosed non-whitespace region. *)
let trim_bounds s i j =
  let i = ref i and j = ref j in
  while !i < !j && is_ws s.[!i] do incr i done;
  while !j > !i && is_ws s.[!j - 1] do decr j done;
  (!i, !j)

(* Parse the substring [i, j) of [line] as a path, reporting the exact
   column and text of the offending label on failure.  Also returns the
   span of each label, in path order (empty for the empty path). *)
let path_at ~line_no line i j =
  let i, j = trim_bounds line i j in
  let s = String.sub line i (j - i) in
  if s = "" || s = "eps" then Ok (Path.empty, [])
  else begin
    (* split on '.' by hand, keeping each label's offset in [line] *)
    let rec go start acc spans =
      let stop =
        match String.index_from_opt line start '.' with
        | Some d when d < j -> d
        | _ -> j
      in
      let tok = String.sub line start (stop - start) in
      match Label.make tok with
      | l ->
          let acc = l :: acc in
          let spans =
            Span.v ~line:line_no ~start_col:(start + 1) ~end_col:(stop + 1)
            :: spans
          in
          if stop < j then go (stop + 1) acc spans
          else Ok (Path.of_labels (List.rev acc), List.rev spans)
      | exception Invalid_argument m ->
          Error { line = line_no; col = start + 1; token = tok; reason = m }
    in
    go i [] []
  end

(* Parse one constraint from [line] (which must contain one); [line_no]
   is its 1-based position in the enclosing document. *)
let constraint_of_line ~line_no line =
  let s0, e0 = trim_bounds line 0 (String.length line) in
  let span = Span.v ~line:line_no ~start_col:(s0 + 1) ~end_col:(e0 + 1) in
  let whole = String.sub line s0 (e0 - s0) in
  if s0 = e0 then
    Error { line = line_no; col = 1; token = ""; reason = "empty constraint" }
  else
    (* [prefix :] body, where body is [lhs -> rhs] or [lhs <- rhs] *)
    let pstart, pstop, bstart =
      match find_sub ":" line s0 e0 with
      | Some i -> (s0, i, i + 1)
      | None -> (s0, s0, s0)
    in
    let kind, lstart, lstop, rstart =
      match find_sub "->" line bstart e0 with
      | Some i -> (Some Constr.Forward, bstart, i, i + 2)
      | None -> (
          match find_sub "<-" line bstart e0 with
          | Some i -> (Some Constr.Backward, bstart, i, i + 2)
          | None -> (None, bstart, bstart, bstart))
    in
    match kind with
    | None ->
        Error
          {
            line = line_no;
            col = s0 + 1;
            token = whole;
            reason = "no '->' or '<-' found";
          }
    | Some kind -> (
        match
          ( path_at ~line_no line pstart pstop,
            path_at ~line_no line lstart lstop,
            path_at ~line_no line rstart e0 )
        with
        | Ok (prefix, prefix_spans), Ok (lhs, lhs_spans), Ok (rhs, rhs_spans)
          ->
            Ok
              {
                constr = Constr.make kind ~prefix ~lhs ~rhs;
                span;
                tokens = { prefix_spans; lhs_spans; rhs_spans };
              }
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)

let constraint_of_string_spanned line =
  match constraint_of_line ~line_no:1 line with
  | Ok { constr; span; _ } -> Ok (constr, span)
  | Error e -> Error e

let is_blank line =
  let t = String.trim line in
  t = "" || t.[0] = '#'

(* A comment line of the form [# pathctl-disable CODE ...] (next
   constraint) or [# pathctl-disable-file CODE ...] (whole file).
   Returns [None] for ordinary comments. *)
let pragma_of_line ~line_no line =
  let s0, e0 = trim_bounds line 0 (String.length line) in
  if s0 >= e0 || line.[s0] <> '#' then None
  else begin
    let i = ref (s0 + 1) in
    while !i < e0 && is_ws line.[!i] do incr i done;
    let starts kw =
      let n = String.length kw in
      !i + n <= e0
      && String.sub line !i n = kw
      && (!i + n = e0 || is_ws line.[!i + n])
    in
    let keyword =
      if starts "pathctl-disable-file" then Some true
      else if starts "pathctl-disable" then Some false
      else None
    in
    match keyword with
    | None -> None
    | Some file_wide ->
        let kwlen =
          String.length
            (if file_wide then "pathctl-disable-file" else "pathctl-disable")
        in
        let rest = String.sub line (!i + kwlen) (e0 - !i - kwlen) in
        let codes =
          String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) rest
          |> String.split_on_char ' '
          |> List.filter (fun s -> s <> "")
        in
        Some
          {
            codes;
            file_wide;
            applies_to = None;
            pragma_span =
              Span.v ~line:line_no ~start_col:(s0 + 1) ~end_col:(e0 + 1);
          }
  end

let document_of_string doc =
  let lines = String.split_on_char '\n' doc in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if is_blank line then
          match pragma_of_line ~line_no:n line with
          | Some p -> go (n + 1) (`P p :: acc) rest
          | None -> go (n + 1) acc rest
        else (
          match constraint_of_line ~line_no:n line with
          | Ok c -> go (n + 1) (`C c :: acc) rest
          | Error e -> Error e)
  in
  match go 1 [] lines with
  | Error e -> Error e
  | Ok items ->
      (* a next-line pragma governs the next constraint in the document *)
      let rec resolve = function
        | [] -> []
        | `P p :: rest when not p.file_wide ->
            let applies_to =
              List.find_map
                (function
                  | `C c -> Some c.span.Span.line
                  | `P _ -> None)
                rest
            in
            { p with applies_to } :: resolve rest
        | `P p :: rest -> p :: resolve rest
        | `C _ :: rest -> resolve rest
      in
      Ok
        {
          constraints =
            List.filter_map (function `C c -> Some c | `P _ -> None) items;
          pragmas = resolve items;
        }

let constraints_of_string_spanned doc =
  match document_of_string doc with
  | Ok { constraints; _ } ->
      Ok (List.map (fun { constr; span; _ } -> (constr, span)) constraints)
  | Error e -> Error e

(* --- legacy string-error wrappers ------------------------------------- *)

let path_of_string s =
  match Path.of_string s with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

let constraint_of_string line =
  match constraint_of_string_spanned line with
  | Ok (c, _) -> Ok c
  | Error e -> Error (error_to_string e)

let constraints_of_string doc =
  match constraints_of_string_spanned doc with
  | Ok cs -> Ok (List.map fst cs)
  | Error e -> Error (error_to_string e)
