(** The "small" undecidable fragments of P_c from Sections 4.1 and 6.

    For a label [K], the fragment [P_w(K)] is
    [P_w union { (psi; K) | psi in P_w }] where, for a word constraint
    [psi = forall x (alpha(r,x) -> beta(r,x))],
    [(psi; K) = forall x (K(r,x) -> forall y (alpha(x,y) -> beta(x,y)))].

    More generally, for a path [rho], [P_w(rho)] (written [P_w(alpha)] in
    Section 6) prefixes word constraints with the fixed path [rho]. *)

val lift : Path.t -> Constr.t -> Constr.t option
(** [lift rho psi] is [Some (psi; rho)] when [psi] is a word constraint:
    the forward constraint with prefix [rho] and the body of [psi];
    [None] when [psi] is not a word constraint. *)

val in_pw : Constr.t -> bool
(** Membership in P_w (Definition 2.2). *)

val in_pw_k : k:Label.t -> Constr.t -> bool
(** Membership in [P_w(K)] for the label [k]. *)

val in_pw_path : rho:Path.t -> Constr.t -> bool
(** Membership in [P_w(rho)] for an arbitrary fixed path [rho]
    (Section 6).  [in_pw_path ~rho:(Path.singleton k)] coincides with
    [in_pw_k ~k]. *)

val check_all :
  (Constr.t -> bool) -> Constr.t list -> (unit, Constr.t) result
(** [check_all member sigma] is [Ok ()] when every constraint satisfies
    the membership predicate, and [Error phi] naming the first member
    outside the fragment otherwise. *)

val errors_all :
  (Constr.t -> bool) -> Constr.t list -> (unit, Constr.t list) result
(** Like {!check_all} but [Error] carries {e every} member outside the
    fragment (in input order), so a linter can report all fragment
    violations in one run. *)
