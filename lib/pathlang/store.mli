(** A hash-consed, subsumption-ordered constraint store.

    The store holds one constraint set Sigma as path e-classes over a
    trie of hash-consed paths with union-find merging, plus the
    containment arcs the constraints induce.  All queries are
    {e syntactic, cheap and sound-only}: a [true]/[Some _] answer is a
    theorem, a [false]/[None] answer means "not derivable by the cheap
    rules" — the caller falls through to a decision procedure (the
    PTIME word procedure, the cubic typed-M closure, or the budgeted
    chase).  The analysis layer ([Analysis.Interact], the PC505 hygiene
    pass, the redundancy pass) drives all its scans through this module
    instead of ad-hoc list walks.

    Untyped mode reasons over {e all} semistructured structures with
    membership, reflexivity, per-prefix transitivity, right congruence
    (appending a common suffix to both paths of a forward constraint)
    and mutual-containment collapse.  Typed mode ([~typed:true])
    additionally reads every constraint as a root-anchored endpoint
    equality (Lemmas 4.7/4.8, sound over U(Delta) for kind-M schemas)
    and congruence-closes the equalities. *)

type t

val of_constraints : ?typed:bool -> Constr.t list -> t
(** Build the store for a constraint set.  [typed] (default [false])
    selects the kind-M equality reading; conclusions of a typed store
    are sound only over unfoldings of an M-schema. *)

val size : t -> int
(** Number of stored constraints. *)

val constraints : t -> Constr.t list
(** The stored constraints, in input order. *)

val mem : t -> Constr.t -> bool
(** Exact (syntactic) membership of a constraint in the set. *)

val subsuming_member : t -> Constr.t -> (int * Constr.t * Path.t) option
(** [subsuming_member st c] is [Some (i, c', delta)] when the stored
    forward constraint [c'] (0-based input index [i], first such in
    input order) has the same prefix as [c] and appending the non-empty
    suffix [delta] to both of its paths yields [c] — so [c] is entailed
    by right congruence.  [c] itself never subsumes.  This is the
    hygiene (PC505) witness; after ecta's [hasSubsumingMember]. *)

val completed_subsumption_ordering : t -> (int * Constr.t) list
(** A linear extension of the subsumption order: every subsumer comes
    before everything it subsumes (sorted by total body length, stable
    on input position, so it is deterministic).  The redundancy pass
    peels candidates in this order so subsumed constraints are
    considered for removal first.  After ecta's
    [completedSubsumptionOrdering]. *)

val implies_syntactic : t -> Constr.t -> bool
(** Sound pre-filter for entailment: [true] means Sigma entails the
    constraint (over all structures untyped; over U(Delta) typed);
    [false] means unknown.  After ecta's [constraintsImply]. *)

val same_class : t -> Path.t -> Path.t -> bool
(** [same_class st p q]: the closure proved the two root-anchored paths
    have equal endpoint sets. *)

val find_conflict :
  t ->
  key:(Path.t -> 'k option) ->
  eq:('k -> 'k -> bool) ->
  (Path.t * Path.t) option
(** [find_conflict st ~key ~eq] scans the e-classes for two members
    whose keys exist and disagree.  With [key] = the schema's
    path-typing function this is a sort clash: a sound witness (in a
    typed store) that Sigma is unsatisfiable over U(Delta), returned as
    the two clashing paths. *)

val eclasses : t -> Path.t list list
(** The non-trivial e-classes of root-anchored paths (each sorted, the
    list sorted by first member) — for [--explain] output and tests. *)

type stats = {
  paths : int;
  classes : int;
  merges : int;
  arcs : int;
  buckets : int;
  max_bucket : int;
}

val stats : t -> stats
(** [paths] interned nodes, [classes] live e-classes, [merges] unions
    performed while closing, [arcs] containment arcs on live class
    roots, [buckets] per-prefix forward-constraint buckets and
    [max_bucket] the node count of the largest one.  Every build also
    publishes these as [store.*] Obs gauges ([store.paths],
    [store.eclasses], [store.merges], [store.containment_arcs],
    [store.buckets], [store.max_bucket]) describing the most recently
    built store. *)
