(** Source spans for diagnostics.

    A span locates a region of a source file: a 1-based line number and
    a 1-based, end-exclusive column range on that line.  Spans are
    produced by the span-carrying parser entry points
    ({!Parser.constraints_of_string_spanned},
    [Schema.Schema_parser.of_string_spanned]) and consumed by the static
    analyzer's diagnostics. *)

type t = {
  line : int;  (** 1-based line number *)
  start_col : int;  (** 1-based column of the first character *)
  end_col : int;  (** 1-based column one past the last character *)
}

val v : line:int -> start_col:int -> end_col:int -> t
(** Clamps degenerate inputs so that [line >= 1] and
    [end_col >= start_col >= 1]. *)

val point : line:int -> col:int -> t
(** A single-character span. *)

val of_offset : string -> int -> int * int
(** [of_offset src pos] is the [(line, col)] (both 1-based) of the byte
    offset [pos] in [src]; offsets past the end locate one past the
    last character. *)

val pp : Format.formatter -> t -> unit
(** Prints [line:start-end] (or [line:col] when one character wide). *)

val to_string : t -> string
