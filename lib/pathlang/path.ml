(* Hash-consed paths.

   A path value is a unique physical representative of its label
   sequence: construction goes through a weak hash-set keyed on the
   interned label ids, so two live paths with the same labels are the
   same object.  Equality and hashing are therefore O(1); the shortlex
   [compare] keeps its documented order (it is the reduction order of
   the Knuth-Bendix substrate) but short-circuits on physical equality
   and on the precomputed length.  The weak table lets unreferenced
   paths be collected, so transient words produced by the rewriting
   engines do not accumulate. *)

type t = {
  labels : Label.t list;
  len : int;
  hash : int;
  mutable id : int;  (* unique among live paths; set once at interning *)
}

module HC = Weak.Make (struct
  type nonrec t = t

  let equal a b =
    a.len = b.len
    && (try List.for_all2 Label.equal a.labels b.labels
        with Invalid_argument _ -> false)

  let hash a = a.hash
end)

let table = HC.create 1024
let next_id = ref 0

(* The hash fold stays outside the critical section ([Label.id] locks
   internally when armed); only the weak-set probe and the id
   assignment need the interning lock. *)
let make labels =
  let len, h =
    List.fold_left
      (fun (n, h) k -> (n + 1, (h * 31) + Label.id k))
      (0, 17) labels
  in
  let probe = { labels; len; hash = h land max_int; id = -1 } in
  Intern_lock.with_lock (fun () ->
      let r = HC.merge table probe in
      if r == probe then begin
        r.id <- !next_id;
        incr next_id
      end;
      r)

let empty = make []
let is_empty p = p.len = 0
let of_labels = make
let to_labels p = p.labels
let of_strings ss = make (List.map Label.make ss)
let singleton k = make [ k ]
let cons k p = make (k :: p.labels)
let snoc p k = make (p.labels @ [ k ])
let concat p q = if p.len = 0 then q else if q.len = 0 then p else make (p.labels @ q.labels)
let length p = p.len

let head p = match p.labels with [] -> None | k :: _ -> Some k

let uncons p =
  match p.labels with [] -> None | k :: rest -> Some (k, make rest)

let rec last_labels = function
  | [] -> None
  | [ k ] -> Some k
  | _ :: p -> last_labels p

let last p = last_labels p.labels

let split_last p =
  let rec go acc = function
    | [] -> None
    | [ k ] -> Some (make (List.rev acc), k)
    | k :: rest -> go (k :: acc) rest
  in
  go [] p.labels

let is_prefix p q =
  let rec go p q =
    match (p, q) with
    | [], _ -> true
    | _, [] -> false
    | a :: p', b :: q' -> Label.equal a b && go p' q'
  in
  p.len <= q.len && go p.labels q.labels

let strip_prefix ~prefix q =
  let rec go p q =
    match (p, q) with
    | [], rest -> Some (make rest)
    | _, [] -> None
    | a :: p', b :: q' -> if Label.equal a b then go p' q' else None
  in
  if prefix.len > q.len then None else go prefix.labels q.labels

let prefixes p =
  let rec go acc rev_cur = function
    | [] -> List.rev acc
    | k :: rest -> go (make (List.rev (k :: rev_cur)) :: acc) (k :: rev_cur) rest
  in
  go [ empty ] [] p.labels

let rev p = make (List.rev p.labels)

let labels_used p =
  List.fold_left (fun s k -> Label.Set.add k s) Label.Set.empty p.labels

(* Hash-consing invariant: two live paths are structurally equal iff
   they are the same object (the property test cross-checks this
   against the label-list comparison). *)
let equal p q = p == q

let compare_lex p q = List.compare Label.compare p.labels q.labels

let compare p q =
  if p == q then 0
  else
    let c = Int.compare p.len q.len in
    if c <> 0 then c else compare_lex p q

let hash p = p.hash
let id p = p.id

let to_string p =
  match p.labels with
  | [] -> "eps"
  | ls -> String.concat "." (List.map Label.to_string ls)

let pp ppf p = Format.pp_print_string ppf (to_string p)

let of_string s =
  let s = String.trim s in
  if s = "" || s = "eps" then empty
  else make (List.map Label.make (String.split_on_char '.' s))

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
