type t = Label.t list

let empty = []
let is_empty p = p = []
let of_labels ls = ls
let to_labels p = p
let of_strings ss = List.map Label.make ss
let singleton k = [ k ]
let cons k p = k :: p
let snoc p k = p @ [ k ]
let concat p q = p @ q
let length = List.length

let head = function [] -> None | k :: _ -> Some k
let uncons = function [] -> None | k :: p -> Some (k, p)

let rec last = function
  | [] -> None
  | [ k ] -> Some k
  | _ :: p -> last p

let split_last p =
  let rec go acc = function
    | [] -> None
    | [ k ] -> Some (List.rev acc, k)
    | k :: rest -> go (k :: acc) rest
  in
  go [] p

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> Label.equal a b && is_prefix p' q'

let rec strip_prefix ~prefix q =
  match (prefix, q) with
  | [], _ -> Some q
  | _, [] -> None
  | a :: p', b :: q' -> if Label.equal a b then strip_prefix ~prefix:p' q' else None

let prefixes p =
  let rec go acc rev_cur = function
    | [] -> List.rev acc
    | k :: rest -> go (List.rev (k :: rev_cur) :: acc) (k :: rev_cur) rest
  in
  go [ [] ] [] p

let rev = List.rev

let labels_used p = List.fold_left (fun s k -> Label.Set.add k s) Label.Set.empty p

let equal p q = try List.for_all2 Label.equal p q with Invalid_argument _ -> false

let compare_lex = List.compare Label.compare

let compare p q =
  let c = Int.compare (List.length p) (List.length q) in
  if c <> 0 then c else compare_lex p q

let hash = Hashtbl.hash

let to_string = function
  | [] -> "eps"
  | p -> String.concat "." (List.map Label.to_string p)

let pp ppf p = Format.pp_print_string ppf (to_string p)

let of_string s =
  let s = String.trim s in
  if s = "" || s = "eps" then []
  else List.map Label.make (String.split_on_char '.' s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
