type t = string

let forbidden = [ '.'; '('; ')'; '['; ']'; ':'; '>'; '<'; '-'; '='; ',' ]

let valid_char c =
  (not (List.mem c forbidden))
  && (not (c = ' ' || c = '\t' || c = '\n' || c = '\r'))

let make s =
  if String.length s = 0 then invalid_arg "Label.make: empty label";
  String.iter
    (fun c ->
      if not (valid_char c) then
        invalid_arg (Printf.sprintf "Label.make: forbidden character %C in %S" c s))
    s;
  s

let of_string = make
let to_string s = s
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

(* Interning: a dense integer per distinct label, assigned on first
   use.  The id is what the hash-consed path layer and the constraint
   store key their tries on, so label comparison on the hot paths is an
   integer test instead of a string walk.  Ids are stable within a
   process, not across runs; nothing durable may depend on them. *)
let intern : (string, int) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

(* Reads must be locked too once parallel mode is armed: a concurrent
   [Hashtbl.add] can resize the table under a reader's feet. *)
let id s =
  Intern_lock.with_lock (fun () ->
      match Hashtbl.find_opt intern s with
      | Some i -> i
      | None ->
          let i = !next_id in
          incr next_id;
          Hashtbl.add intern s i;
          i)

module Set = Set.Make (String)
module Map = Map.Make (String)
