(* A hash-consed, subsumption-ordered constraint store.

   The store holds one constraint set Sigma as path e-classes over a
   shared trie of interned paths, after ecta's [Internal.Paths]: each
   trie node is one hash-consed path, union-find merges nodes that
   Sigma forces to have equal endpoint sets, and merging propagates to
   children (congruence: equal endpoint sets stay equal under a common
   suffix).  On top of the classes it keeps the containment arcs of the
   constraints themselves ([hasSubsumingMember]-style prefix
   subsumption and [constraintsImply]-style syntactic entailment).

   Everything here is *syntactic* and cheap — near-linear build, O(set)
   queries — and *sound only*: [implies_syntactic] true means the
   constraint really is entailed, false means "don't know"; a conflict
   from [find_conflict] means Sigma really is unsatisfiable over the
   schema.  The analysis layer uses these as pre-filters that
   short-circuit the expensive decision procedures (the PTIME word
   procedure, the cubic typed-M closure, the budgeted chase).

   Soundness of the three inference steps encoded in the untyped mode
   (over all semistructured structures, per Abiteboul-Vianu's complete
   rule set for P_w, restated in Section 4.2 of the paper):
   - membership and reflexivity are immediate;
   - transitivity of containment arcs within a bucket of constraints
     sharing one prefix [alpha]: for each [alpha]-endpoint the inclusion
     of successor sets composes;
   - right congruence: [beta -> gamma] entails
     [beta.delta -> gamma.delta]; mutual containment ([p -> q] and
     [q -> p]) makes the endpoint sets equal, and equality of endpoint
     sets propagates to any common suffix, which is exactly the trie
     merge with child propagation.

   In typed mode ([~typed:true]) the store instead encodes the kind-M
   reading (Lemmas 4.7/4.8: a constraint is an equality between the
   endpoints of two root-anchored paths) and merges the full paths of
   every constraint — the congruence closure of the cubic procedure,
   minus the schema typing, which the caller supplies to
   [find_conflict] as a key function.  Typed-mode conclusions are sound
   over U(Delta) only. *)

type node = {
  nid : int;
  path : Path.t;
  mutable parent : node option; (* union-find; [None] = class root *)
  mutable rank : int;
  mutable children : (int * node) list; (* label id -> child, on class roots *)
  mutable succs : node list; (* containment arcs out: this ⊑ succ *)
}

type graph = {
  mutable fresh : int;
  mutable all : node list; (* every node ever created, for iteration *)
  trie : node; (* the eps node *)
  mutable merges : int;
}

let new_node g path =
  let n =
    { nid = g.fresh; path; parent = None; rank = 0; children = []; succs = [] }
  in
  g.fresh <- g.fresh + 1;
  g.all <- n :: g.all;
  n

let new_graph () =
  let root =
    { nid = 0; path = Path.empty; parent = None; rank = 0; children = []; succs = [] }
  in
  { fresh = 1; all = [ root ]; trie = root; merges = 0 }

let rec find n =
  match n.parent with
  | None -> n
  | Some p ->
      let r = find p in
      if r != p then n.parent <- Some r;
      r

(* Walk (and extend) the trie from [from] along [labels]; every node
   lookup goes through [find] so the walk sees merged classes, which is
   what makes congruence propagate through shared suffixes for free. *)
let intern_from g from labels =
  List.fold_left
    (fun cur k ->
      let cur = find cur in
      let l = Label.id k in
      match List.assoc_opt l cur.children with
      | Some c -> find c
      | None ->
          let c = new_node g (Path.snoc cur.path k) in
          cur.children <- (l, c) :: cur.children;
          c)
    (find from) labels

let intern g p = intern_from g g.trie (Path.to_labels p)

(* Non-extending lookup: [None] when the path was never interned. *)
let lookup_from g from labels =
  ignore g;
  let rec go cur = function
    | [] -> Some (find cur)
    | k :: rest -> (
        let cur = find cur in
        match List.assoc_opt (Label.id k) cur.children with
        | Some c -> go c rest
        | None -> None)
  in
  go from labels

let lookup g p = lookup_from g g.trie (Path.to_labels p)

(* Union with congruence: merging two classes merges their equally
   labeled children, recursively. *)
let rec union g a b =
  let ra = find a and rb = find b in
  if ra != rb then begin
    g.merges <- g.merges + 1;
    let win, lose = if ra.rank >= rb.rank then (ra, rb) else (rb, ra) in
    if win.rank = lose.rank then win.rank <- win.rank + 1;
    lose.parent <- Some win;
    win.succs <- List.rev_append lose.succs win.succs;
    let pending = lose.children in
    lose.children <- [];
    List.iter
      (fun (l, c) ->
        (* a recursive child union can merge [win] itself away, so
           re-find the current root before touching its child map *)
        let w = find win in
        match List.assoc_opt l w.children with
        | Some c' -> if find c != find c' then union g c c'
        | None -> w.children <- (l, c) :: w.children)
      pending
  end

let add_arc u v =
  let u = find u and v = find v in
  if u != v then u.succs <- v :: u.succs

let class_roots g =
  List.filter (fun n -> find n == n) g.all

(* Reachability over containment arcs on class roots. *)
let leq u v =
  let u = find u and v = find v in
  if u == v then true
  else begin
    let seen = Hashtbl.create 16 in
    let rec go frontier =
      match frontier with
      | [] -> false
      | n :: rest ->
          let n = find n in
          if n == v then true
          else if Hashtbl.mem seen n.nid then go rest
          else begin
            Hashtbl.add seen n.nid ();
            go (List.rev_append n.succs rest)
          end
    in
    go [ u ]
  end

(* Merge mutually containing classes ([p ⊑ q] and [q ⊑ p] force equal
   endpoint sets), then re-close: a merge can expose new mutual pairs
   through congruence, so iterate to a fixpoint.  Quadratic in the
   worst case; constraint sets at lint scale keep it far from it. *)
let close_mutual g =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if find n == n then
          List.iter
            (fun s ->
              let u = find n and v = find s in
              if u != v && leq v u then begin
                union g u v;
                changed := true
              end)
            n.succs)
      g.all
  done

(* --- the store ------------------------------------------------------------ *)

type t = {
  typed : bool;
  constrs : Constr.t array;
  root : graph; (* root-anchored paths: word arcs (untyped) or full equalities (typed) *)
  buckets : (int, graph) Hashtbl.t; (* forward constraints, relative paths, keyed by root class id of the prefix *)
  by_prefix : (int, (int * Constr.t) list) Hashtbl.t;
      (* forward constraints grouped by the *exact* prefix path id, input order *)
  backwards : (int * Constr.t) list; (* input order *)
}

(* The Lemma 4.7/4.8 translation, locally (the store cannot depend on
   [Core]): the pair of root-anchored paths whose endpoint equality is
   equivalent to the constraint over U(Delta). *)
let word_equality c =
  let prefix = Constr.prefix c in
  match Constr.kind c with
  | Constr.Forward ->
      (Path.concat prefix (Constr.lhs c), Path.concat prefix (Constr.rhs c))
  | Constr.Backward ->
      (prefix, Path.concat (Path.concat prefix (Constr.lhs c)) (Constr.rhs c))

let bucket_key st prefix =
  (find (intern st.root prefix)).nid

type stats = {
  paths : int;
  classes : int;
  merges : int;
  arcs : int;
  buckets : int;
  max_bucket : int;
}

let stats st =
  let roots = class_roots st.root in
  let arcs =
    List.fold_left (fun acc n -> acc + List.length n.succs) 0 roots
  in
  let buckets = Hashtbl.length st.buckets in
  let max_bucket =
    Hashtbl.fold (fun _ b acc -> max acc (List.length b.all)) st.buckets 0
  in
  {
    paths = List.length st.root.all;
    classes = List.length roots;
    merges = st.root.merges;
    arcs;
    buckets;
    max_bucket;
  }

(* gauges mirroring the last store built, so [--stats]/[--metrics]
   surface the hash-consed store without threading it to the caller *)
let g_paths = Obs.Gauge.make ~unit_:"nodes" "store.paths"
let g_classes = Obs.Gauge.make ~unit_:"classes" "store.eclasses"
let g_merges = Obs.Gauge.make ~unit_:"unions" "store.merges"
let g_arcs = Obs.Gauge.make ~unit_:"arcs" "store.containment_arcs"
let g_buckets = Obs.Gauge.make ~unit_:"buckets" "store.buckets"
let g_max_bucket = Obs.Gauge.make ~unit_:"nodes" "store.max_bucket"

let publish_gauges st =
  if Obs.enabled () then begin
    let s = stats st in
    Obs.Gauge.set g_paths s.paths;
    Obs.Gauge.set g_classes s.classes;
    Obs.Gauge.set g_merges s.merges;
    Obs.Gauge.set g_arcs s.arcs;
    Obs.Gauge.set g_buckets s.buckets;
    Obs.Gauge.set g_max_bucket s.max_bucket
  end

let of_constraints ?(typed = false) constrs =
  let st =
    {
      typed;
      constrs = Array.of_list constrs;
      root = new_graph ();
      buckets = Hashtbl.create 8;
      by_prefix = Hashtbl.create 8;
      backwards = [];
    }
  in
  (* root graph: intern every root-anchored path the constraints walk,
     then the semantic edges *)
  Array.iter
    (fun c -> List.iter (fun p -> ignore (intern st.root p)) (Constr.paths_used c))
    st.constrs;
  Array.iter
    (fun c ->
      if typed then begin
        let p, q = word_equality c in
        union st.root (intern st.root p) (intern st.root q)
      end
      else
        match Constr.kind c with
        | Constr.Forward ->
            (* [alpha : beta -> gamma] gives
               endpoints(alpha.beta) ⊆ endpoints(alpha.gamma): the
               pointwise inclusions union over the alpha endpoints. *)
            let prefix = Constr.prefix c in
            add_arc
              (intern st.root (Path.concat prefix (Constr.lhs c)))
              (intern st.root (Path.concat prefix (Constr.rhs c)))
        | Constr.Backward ->
            (* no sound root-set inclusion untyped: the return path
               only covers alpha endpoints that have a beta successor *)
            ())
    st.constrs;
  if not typed then close_mutual st.root;
  (* per-prefix buckets of forward constraints, relative to the prefix;
     bucketed by the prefix's *class* so constraints whose prefixes
     Sigma proved coextensive share one bucket *)
  let backwards = ref [] in
  Array.iteri
    (fun i c ->
      match Constr.kind c with
      | Constr.Backward -> backwards := (i, c) :: !backwards
      | Constr.Forward ->
          let exact = Path.id (Constr.prefix c) in
          let group = Option.value ~default:[] (Hashtbl.find_opt st.by_prefix exact) in
          Hashtbl.replace st.by_prefix exact (group @ [ (i, c) ]);
          let key = bucket_key st (Constr.prefix c) in
          let b =
            match Hashtbl.find_opt st.buckets key with
            | Some b -> b
            | None ->
                let b = new_graph () in
                Hashtbl.add st.buckets key b;
                b
          in
          add_arc (intern b (Constr.lhs c)) (intern b (Constr.rhs c)))
    st.constrs;
  Hashtbl.iter (fun _ b -> close_mutual b) st.buckets;
  let st = { st with backwards = List.rev !backwards } in
  publish_gauges st;
  st

let size st = Array.length st.constrs
let constraints st = Array.to_list st.constrs

let mem st c =
  match Constr.kind c with
  | Constr.Backward -> List.exists (fun (_, c') -> Constr.equal c c') st.backwards
  | Constr.Forward -> (
      match Hashtbl.find_opt st.by_prefix (Path.id (Constr.prefix c)) with
      | None -> false
      | Some group -> List.exists (fun (_, c') -> Constr.equal c c') group)

(* ecta's [hasSubsumingMember], specialized to right congruence: the
   first stored forward constraint (input order) with the same prefix
   from which [c] follows by appending one common non-empty suffix to
   both paths.  Exactly the PC505 witness. *)
let subsuming_member st c =
  if Constr.kind c <> Constr.Forward then None
  else
    match Hashtbl.find_opt st.by_prefix (Path.id (Constr.prefix c)) with
    | None -> None
    | Some group ->
        List.find_map
          (fun (i, c') ->
            if Constr.equal c c' then None
            else
              match
                ( Path.strip_prefix ~prefix:(Constr.lhs c') (Constr.lhs c),
                  Path.strip_prefix ~prefix:(Constr.rhs c') (Constr.rhs c) )
              with
              | Some d1, Some d2 when Path.equal d1 d2 && not (Path.is_empty d1)
                ->
                  Some (i, c', d1)
              | _ -> None)
          group

(* ecta's [completedSubsumptionOrdering]: a linear extension of the
   subsumption partial order — a subsumer is strictly shorter than what
   it subsumes (same prefix, one common suffix appended to both paths),
   so sorting by body length, stably on input position, places every
   subsumer before everything it subsumes. *)
let completed_subsumption_ordering st =
  let weighted =
    Array.to_list
      (Array.mapi
         (fun i c ->
           (Path.length (Constr.lhs c) + Path.length (Constr.rhs c), i, c))
         st.constrs)
  in
  List.map
    (fun (_, i, c) -> (i, c))
    (List.stable_sort
       (fun (w1, i1, _) (w2, i2, _) ->
         match Int.compare w1 w2 with 0 -> Int.compare i1 i2 | c -> c)
       weighted)

(* Endpoint-set equality of two root-anchored paths, as far as the
   syntactic closure sees it. *)
let same_class st p q =
  Path.equal p q || find (intern st.root p) == find (intern st.root q)

let implies_syntactic st phi =
  if st.typed then
    let p, q = word_equality phi in
    same_class st p q
  else
    match Constr.kind phi with
    | Constr.Backward -> mem st phi
    | Constr.Forward -> (
        let lhs = Constr.lhs phi and rhs = Constr.rhs phi in
        Path.equal lhs rhs (* reflexivity *)
        ||
        match Hashtbl.find_opt st.buckets (bucket_key st (Constr.prefix phi)) with
        | None -> false
        | Some b ->
            (* try every common-suffix split: right congruence lifts a
               derivation of the stripped pair to the full one *)
            let rl = List.rev (Path.to_labels lhs)
            and rr = List.rev (Path.to_labels rhs) in
            let rec strip rl rr =
              (match
                 ( lookup b (Path.rev (Path.of_labels rl)),
                   lookup b (Path.rev (Path.of_labels rr)) )
               with
              | Some u, Some v -> leq u v
              | _ -> false)
              ||
              match (rl, rr) with
              | a :: rl', b' :: rr' when Label.equal a b' -> strip rl' rr'
              | _ -> false
            in
            strip rl rr)

(* Scan the e-classes of the root graph for two members whose keys
   disagree: with [key] = the schema's path typing, a hit is a sort
   clash, i.e. a sound unsatisfiability witness over U(Delta). *)
let find_conflict st ~key ~eq =
  let by_class = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let r = find n in
      Hashtbl.replace by_class r.nid
        (n :: Option.value ~default:[] (Hashtbl.find_opt by_class r.nid)))
    st.root.all;
  let exception Found of (Path.t * Path.t) in
  try
    Hashtbl.iter
      (fun _ members ->
        match members with
        | [] | [ _ ] -> ()
        | _ ->
            let first = ref None in
            List.iter
              (fun n ->
                match key n.path with
                | None -> ()
                | Some k -> (
                    match !first with
                    | None -> first := Some (n.path, k)
                    | Some (p0, k0) ->
                        if not (eq k0 k) then raise (Found (p0, n.path))))
              members)
      by_class;
    None
  with Found pair -> Some pair

let eclasses st =
  let by_class = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let r = find n in
      Hashtbl.replace by_class r.nid
        (n.path :: Option.value ~default:[] (Hashtbl.find_opt by_class r.nid)))
    st.root.all;
  Hashtbl.fold
    (fun _ paths acc ->
      match paths with [] | [ _ ] -> acc | ps -> List.sort Path.compare ps :: acc)
    by_class []
  |> List.sort (fun a b -> Path.compare (List.hd a) (List.hd b))

