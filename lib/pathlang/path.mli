(** Paths: finite sequences of edge labels.

    Following Section 2.1 of the paper, a path is a first-order formula
    [rho(x, y)] asserting that vertex [y] is reachable from vertex [x] by
    following the sequence of edge labels [rho].  Syntactically a path is
    just a word over the label alphabet; the empty word is the formula
    [x = y] (the {e empty path} epsilon). *)

type t

val empty : t
(** The empty path epsilon, i.e. the formula [x = y]. *)

val is_empty : t -> bool

val of_labels : Label.t list -> t
val to_labels : t -> Label.t list

val of_strings : string list -> t
(** [of_strings ss] builds a path from raw label names.
    @raise Invalid_argument on an invalid label. *)

val singleton : Label.t -> t

val cons : Label.t -> t -> t
(** [cons k rho] is the path [k . rho]. *)

val snoc : t -> Label.t -> t
(** [snoc rho k] is the path [rho . k]. *)

val concat : t -> t -> t
(** [concat rho tau] is the concatenation [rho . tau] of Section 2.1. *)

val length : t -> int

val head : t -> Label.t option
(** First label of the path, or [None] for epsilon. *)

val uncons : t -> (Label.t * t) option
(** [uncons (cons k rho) = Some (k, rho)]; [uncons empty = None]. *)

val last : t -> Label.t option

val split_last : t -> (t * Label.t) option
(** [split_last rho] is [Some (rho', k)] with [rho = rho' . k], computed
    in one pass; [None] for epsilon. *)

val is_prefix : t -> t -> bool
(** [is_prefix rho tau] is true iff [rho <=_p tau], i.e. there is a path
    [rho'] with [tau = rho . rho'] (Section 2.1). *)

val strip_prefix : prefix:t -> t -> t option
(** [strip_prefix ~prefix:rho tau] is [Some rho'] when [tau = rho . rho'],
    and [None] when [rho] is not a prefix of [tau]. *)

val prefixes : t -> t list
(** All prefixes of the path, from epsilon up to the path itself,
    in increasing length order. *)

val rev : t -> t

val labels_used : t -> Label.Set.t

val equal : t -> t -> bool
(** O(1): paths are hash-consed (two live paths with the same labels
    are the same object), so equality is a pointer test.  Agrees with
    structural equality of the label sequences (property-tested). *)

val compare : t -> t -> int
(** Shortlex-compatible total order: shorter paths first, then
    lexicographic on labels.  This is the reduction order used by the
    Knuth-Bendix substrate, and a convenient canonical order everywhere
    else. *)

val compare_lex : t -> t -> int
(** Plain lexicographic order (used by sets that do not care about
    shortlex). *)

val hash : t -> int
(** O(1): precomputed at interning time over the label ids. *)

val id : t -> int
(** The path's interning id: unique among live paths, stable for the
    value's lifetime.  {!Store} keys its hash tables on it.  Like
    {!Label.id} it is process-local — never persist it. *)

val pp : Format.formatter -> t -> unit
(** Prints [a.b.c]; the empty path prints as [eps]. *)

val to_string : t -> string

val of_string : string -> t
(** Parses the output of {!to_string}: dot-separated labels, or ["eps"]
    (or [""]) for the empty path.
    @raise Invalid_argument on malformed input. *)

(** Sets and maps over paths (ordered by {!compare}). *)
module Set : Set.S with type elt = t

module Map : Map.S with type key = t
