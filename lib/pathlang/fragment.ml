let lift rho psi =
  match Constr.as_word psi with
  | Some (lhs, rhs) -> Some (Constr.forward ~prefix:rho ~lhs ~rhs)
  | None -> None

let in_pw = Constr.is_word

let in_pw_path ~rho phi =
  Constr.kind phi = Constr.Forward
  && (Path.is_empty (Constr.prefix phi) || Path.equal (Constr.prefix phi) rho)

let in_pw_k ~k phi = in_pw_path ~rho:(Path.singleton k) phi

let check_all member sigma =
  match List.find_opt (fun phi -> not (member phi)) sigma with
  | None -> Ok ()
  | Some phi -> Error phi

let errors_all member sigma =
  match List.filter (fun phi -> not (member phi)) sigma with
  | [] -> Ok ()
  | offenders -> Error offenders
