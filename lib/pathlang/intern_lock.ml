let armed_flag = Atomic.make false
let lock = Mutex.create ()
let arm () = Atomic.set armed_flag true
let armed () = Atomic.get armed_flag

let with_lock f =
  if Atomic.get armed_flag then begin
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  end
  else f ()
